//! The cross-process backend: the cluster protocols over an mmap'd
//! segment, one OS process per node.
//!
//! The thread-backed [`crate::cluster::Cluster`] shares memory because
//! threads share an address space; on a real machine (and on BG/P, where
//! the four cores run separate CNK processes) sharing has to be arranged.
//! This module arranges it: a [`ProcCluster`] creates one
//! [`bgp_shmem::proc::ShmSegment`], lays the *entire* link fabric — every
//! cursor, cycle tag, and chunk payload — inside it, and spawns one worker
//! process per non-zero node (re-executing the current binary; see
//! [`maybe_worker`]). Every process then attaches a [`ProcSlots`] view per
//! link and runs the *same* `ChunkChannel`/`Fabric` protocol the
//! in-process cluster runs: the storage trait is the only thing that
//! changed, so the model-checked heap twin remains the oracle for this
//! backend.
//!
//! ## Segment layout (after the `bgp-shmem` header)
//!
//! ```text
//! job record     1 seqlock   (job id, kind, root, len, seed)
//! status[v]      m seqlocks  (job id done, status, checksum)
//! result[v]      m regions   (max_msg bytes each; worker v's output)
//! links          the fabric: up[1..m], down[1..m], plus[0..m), minus[0..m)
//! ```
//!
//! Control flow is seqlock-published ([`bgp_shmem::seqlock::SeqLock`] over
//! segment words): the parent publishes a job record; workers poll it, run
//! the collective, write their output into their result region, and
//! publish their status record. The parent participates as node 0, then
//! gathers statuses. A worker that dies mid-collective is detected by the
//! parent's child-liveness poll; the segment is poisoned and the failure
//! surfaces as a typed [`ProcError::WorkerCrashed`] — never a hang.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bgp_shmem::proc::{ShmError, ShmSegment};
use bgp_shmem::seqlock::{SeqLock, SeqWords};
use bgp_shmem::sync::atomic::{AtomicU64, Ordering};

use crate::cluster::{chunks_of, pack_tag, unpack_tag, KIND_FULL, KIND_PARTIAL};
use crate::transport::{ChunkChannel, Fabric, RingDir, SlotStore};

/// Environment variables that turn a re-exec of the current binary into a
/// worker process. [`maybe_worker`] reads them.
const ENV_WORKER: &str = "BGP_PROC_WORKER";
const ENV_SEG: &str = "BGP_PROC_SEG";
const ENV_NODE: &str = "BGP_PROC_ID";

/// Job kinds carried in the job record. Job id 0 (the zeroed segment)
/// means "no job yet"; kinds start at 1.
const JOB_BCAST: u64 = 1;
const JOB_ALLREDUCE: u64 = 2;
const JOB_EXIT: u64 = 3;
/// Test-only: the worker whose node id equals the job's `root` word exits
/// immediately without running the collective (crash injection).
const JOB_CRASH: u64 = 4;

/// Poison code stored when the parent sees a worker die.
const POISON_WORKER_DEATH: u64 = 1;

/// Typed failures of the cross-process cluster.
#[derive(Debug)]
pub enum ProcError {
    /// Segment creation/attach failed (see [`ShmError`]).
    Segment(ShmError),
    /// Spawning a worker process failed.
    Spawn(std::io::Error),
    /// A worker process exited mid-collective. The segment has been
    /// poisoned; the cluster is unusable afterwards.
    WorkerCrashed {
        /// Node id of the dead worker.
        node: usize,
        /// The job it died under.
        job: u64,
    },
    /// A worker reported a nonzero status for a job.
    WorkerFailed {
        /// Node id of the failing worker.
        node: usize,
        /// Its status code.
        status: u64,
    },
    /// The cluster was already poisoned by an earlier failure.
    Poisoned {
        /// The segment's poison code.
        code: u64,
    },
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::Segment(e) => write!(f, "segment error: {e}"),
            ProcError::Spawn(e) => write!(f, "failed to spawn a worker: {e}"),
            ProcError::WorkerCrashed { node, job } => {
                write!(f, "worker process for node {node} died during job {job}")
            }
            ProcError::WorkerFailed { node, status } => {
                write!(f, "worker for node {node} reported status {status}")
            }
            ProcError::Poisoned { code } => {
                write!(f, "cluster poisoned by an earlier failure (code {code})")
            }
        }
    }
}

impl std::error::Error for ProcError {}

impl From<ShmError> for ProcError {
    fn from(e: ShmError) -> Self {
        match e {
            ShmError::Poisoned { code } => ProcError::Poisoned { code },
            other => ProcError::Segment(other),
        }
    }
}

// ---------------------------------------------------------------------------
// ProcSlots: SlotStore over segment memory
// ---------------------------------------------------------------------------

/// Cache-line quantum for segment sub-allocations.
const LINE: usize = 64;

const fn round_line(n: usize) -> usize {
    n.div_ceil(LINE) * LINE
}

/// Bytes one channel occupies in the segment: two cache-line cursors, then
/// `cap` slots of a one-line header (`seq`, `tag`, `len`) plus the payload
/// rounded to whole lines.
fn channel_bytes(cap: usize, chunk_bytes: usize) -> usize {
    2 * LINE + cap * (LINE + round_line(chunk_bytes))
}

/// A [`SlotStore`] viewing one channel's storage inside a mapped segment.
///
/// Layout within the channel's range (all offsets line-aligned):
/// `+0` send cursor, `+64` recv cursor, then per slot: `+0` seq, `+8` tag,
/// `+16` len, `+64` payload. Every process constructs its own `ProcSlots`
/// over the same offsets of its own mapping; the atomics address the same
/// physical words.
pub struct ProcSlots {
    base: *mut u8,
    cap: usize,
    chunk_bytes: usize,
    stride: usize,
    /// Keeps the mapping alive for as long as any channel view exists.
    _seg: Arc<ShmSegment>,
}

// SAFETY: all shared-word access goes through atomics; payload access is
// ordered by the channel's cycle-tag protocol (same contract as HeapSlots).
unsafe impl Send for ProcSlots {}
unsafe impl Sync for ProcSlots {}

impl ProcSlots {
    /// View a channel at `byte_off` into `seg`'s payload. `init` must be
    /// true exactly once per channel, in the segment creator *before* any
    /// worker attaches: it writes the initial cycle tags (`seq(i) = i`;
    /// zeroed memory is correct for slot 0 only).
    ///
    /// # Panics
    ///
    /// If the range is unaligned or out of bounds.
    pub fn attach(
        seg: &Arc<ShmSegment>,
        byte_off: usize,
        cap: usize,
        chunk_bytes: usize,
        init: bool,
    ) -> Self {
        assert!(
            byte_off.is_multiple_of(LINE),
            "channel base must be line-aligned"
        );
        let bytes = channel_bytes(cap, chunk_bytes);
        assert!(
            byte_off + bytes <= seg.payload_len(),
            "channel out of segment bounds"
        );
        let s = ProcSlots {
            // SAFETY: in-bounds per the assert above.
            base: unsafe { seg.payload_ptr().add(byte_off) },
            cap,
            chunk_bytes,
            stride: LINE + round_line(chunk_bytes),
            _seg: seg.clone(),
        };
        if init {
            for i in 0..cap {
                s.seq(i).store(i, Ordering::Release);
            }
        }
        s
    }

    /// Segment payload bytes one channel of this shape occupies — for
    /// sizing standalone channels outside a [`ProcLayout`] (benches).
    pub fn bytes_for(cap: usize, chunk_bytes: usize) -> usize {
        channel_bytes(cap, chunk_bytes)
    }

    #[inline]
    fn slot_base(&self, i: usize) -> *mut u8 {
        debug_assert!(i < self.cap);
        // SAFETY: in-bounds per the attach-time assert.
        unsafe { self.base.add(2 * LINE + i * self.stride) }
    }

    #[inline]
    fn word(&self, byte_off: usize) -> *mut u64 {
        // SAFETY: in-bounds per the attach-time assert; 8-aligned because
        // every sub-offset used is a multiple of 8 off a line-aligned base.
        unsafe { self.base.add(byte_off) as *mut u64 }
    }
}

// SAFETY: the words live as long as the mapping (held via `_seg`), `seq(i)`
// of a freshly `init`-ed store reads `i` with both cursors 0 (the segment
// is created zeroed), and slots address disjoint storage shared physically
// by every mapping of the segment.
unsafe impl SlotStore for ProcSlots {
    #[inline]
    fn cap(&self) -> usize {
        self.cap
    }

    #[inline]
    fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    #[inline]
    fn seq(&self, i: usize) -> &AtomicUsize {
        // SAFETY: in-bounds, 8-aligned, accessed only atomically.
        unsafe { AtomicUsize::from_ptr(self.slot_base(i) as *mut usize) }
    }

    #[inline]
    fn send_cursor(&self) -> &AtomicUsize {
        // SAFETY: as for `seq`.
        unsafe { AtomicUsize::from_ptr(self.word(0) as *mut usize) }
    }

    #[inline]
    fn recv_cursor(&self) -> &AtomicUsize {
        // SAFETY: as for `seq`.
        unsafe { AtomicUsize::from_ptr(self.word(LINE) as *mut usize) }
    }

    unsafe fn set_header(&self, i: usize, tag: u64, len: usize) {
        let p = self.slot_base(i);
        // Plain stores: the cycle-tag protocol (Release publish / Acquire
        // observe on `seq`) orders them, exactly as for HeapSlots' cells.
        (p.add(8) as *mut u64).write(tag);
        (p.add(16) as *mut u64).write(len as u64);
    }

    unsafe fn header(&self, i: usize) -> (u64, usize) {
        let p = self.slot_base(i);
        (
            (p.add(8) as *mut u64).read(),
            (p.add(16) as *mut u64).read() as usize,
        )
    }

    unsafe fn with_data<R>(&self, i: usize, len: usize, f: impl FnOnce(&[u8]) -> R) -> R {
        debug_assert!(len <= self.chunk_bytes);
        f(std::slice::from_raw_parts(self.slot_base(i).add(LINE), len))
    }

    unsafe fn with_data_mut<R>(&self, i: usize, len: usize, f: impl FnOnce(&mut [u8]) -> R) -> R {
        debug_assert!(len <= self.chunk_bytes);
        f(std::slice::from_raw_parts_mut(
            self.slot_base(i).add(LINE),
            len,
        ))
    }
}

// ---------------------------------------------------------------------------
// Segment layout
// ---------------------------------------------------------------------------

/// Seqlock record width (data words) for jobs and statuses.
const REC_WORDS: usize = 5;
/// Bytes one seqlock record occupies (version + data, line-rounded).
const REC_BYTES: usize = round_line(8 * (1 + REC_WORDS));

/// Where everything lives inside the segment payload, computed identically
/// in every process from the geometry words.
#[derive(Clone, Copy)]
pub struct ProcLayout {
    /// Nodes.
    pub m: usize,
    /// Link chunk payload bytes.
    pub chunk_bytes: usize,
    /// Link window (slots per channel).
    pub window: usize,
    /// Per-node result region bytes (the largest message supported).
    pub max_msg: usize,
}

impl ProcLayout {
    fn job_off(&self) -> usize {
        0
    }

    fn status_off(&self, v: usize) -> usize {
        debug_assert!(v < self.m);
        REC_BYTES * (1 + v)
    }

    fn result_off(&self, v: usize) -> usize {
        debug_assert!(v < self.m);
        REC_BYTES * (1 + self.m) + round_line(self.max_msg) * v
    }

    fn links_off(&self) -> usize {
        REC_BYTES * (1 + self.m) + round_line(self.max_msg) * self.m
    }

    fn chan_bytes(&self) -> usize {
        channel_bytes(self.window, self.chunk_bytes)
    }

    /// Total payload bytes the segment needs.
    pub fn payload_len(&self) -> usize {
        // up + down for nodes 1..m, plus + minus for all m nodes (m > 1).
        let links = if self.m > 1 {
            2 * (self.m - 1) + 2 * self.m
        } else {
            0
        };
        self.links_off() + links * self.chan_bytes()
    }

    /// Geometry words stored in the segment header at create time.
    fn geometry(&self) -> [u64; 4] {
        [
            self.m as u64,
            self.chunk_bytes as u64,
            self.window as u64,
            self.max_msg as u64,
        ]
    }

    /// Recover the layout from an attached segment's geometry words.
    fn from_segment(seg: &ShmSegment) -> Self {
        ProcLayout {
            m: seg.geometry(0) as usize,
            chunk_bytes: seg.geometry(1) as usize,
            window: seg.geometry(2) as usize,
            max_msg: seg.geometry(3) as usize,
        }
    }

    /// Build this process's fabric view over the segment. `init` only in
    /// the creator, before workers attach.
    fn fabric(&self, seg: &Arc<ShmSegment>, init: bool) -> Fabric<ProcSlots> {
        let mut off = self.links_off();
        let mut next = |_: &str| {
            let o = off;
            off += self.chan_bytes();
            ChunkChannel::over(ProcSlots::attach(
                seg,
                o,
                self.window,
                self.chunk_bytes,
                init,
            ))
        };
        let mut up = vec![None];
        let mut down = vec![None];
        let (mut plus, mut minus) = (Vec::new(), Vec::new());
        if self.m > 1 {
            for _v in 1..self.m {
                up.push(Some(next("up")));
            }
            for _v in 1..self.m {
                down.push(Some(next("down")));
            }
            for _v in 0..self.m {
                plus.push(next("plus"));
            }
            for _v in 0..self.m {
                minus.push(next("minus"));
            }
        }
        while up.len() < self.m {
            up.push(None); // unreachable (m == 1 has only the root)
        }
        while down.len() < self.m {
            down.push(None);
        }
        Fabric::from_links(self.m, self.chunk_bytes, up, down, plus, minus)
    }
}

// ---------------------------------------------------------------------------
// Single-rank node runners (generic over the slot store)
// ---------------------------------------------------------------------------

/// One node's part of a cluster broadcast, single rank per node: the root
/// injects `buf` into every outbound tree port; every other node receives
/// on its root-facing port into `buf`, forwarding each chunk while the
/// incoming slot is still on loan. Byte-for-byte the `n == 1` arm of
/// [`crate::cluster::ClusterCtx::bcast`].
pub fn node_bcast<S: SlotStore>(fabric: &Fabric<S>, v: usize, root: usize, buf: &mut [u8]) {
    let chunk = fabric.chunk_bytes();
    if v == root {
        let outs = fabric.bcast_out(v, root);
        for (k, off, clen) in chunks_of(buf.len(), chunk) {
            for ch in &outs {
                ch.send_with(k as u64, clen, |dst| {
                    dst.copy_from_slice(&buf[off..off + clen])
                });
            }
        }
    } else {
        let in_ch = fabric.bcast_in(v, root);
        let outs = fabric.bcast_out(v, root);
        for (k, off, clen) in chunks_of(buf.len(), chunk) {
            let rs = in_ch.peek();
            debug_assert_eq!(rs.tag(), k as u64);
            rs.with_bytes(|bytes| buf[off..off + clen].copy_from_slice(bytes));
            for ch in &outs {
                let mut snd = ch.reserve(clen);
                rs.with_bytes(|bytes| snd.with_bytes_mut(|dst| dst.copy_from_slice(bytes)));
                snd.publish(k as u64);
            }
        }
    }
}

/// One node's part of a cluster allreduce (sum of f64s), single rank per
/// node: the single-color ring of
/// [`crate::cluster::ClusterCtx::allreduce_f64`] (`n == 1` ⇒ one color on
/// the `Plus` ring), with `data` as both the node's input and, on return,
/// the global sum. Kernel calls and hop order match the in-process engine
/// exactly, so the result is bitwise identical to the thread cluster's.
pub fn node_allreduce_f64<S: SlotStore>(fabric: &Fabric<S>, v: usize, data: &mut [u8]) {
    debug_assert!(data.len().is_multiple_of(8));
    let m = fabric.n_nodes();
    if m == 1 || data.is_empty() {
        return; // the local partial is the result
    }
    let chunk = fabric.chunk_bytes();
    let dir = RingDir::Plus; // color 0
    let pos = fabric.ring_pos(v, dir);
    let kt = data.len().div_ceil(chunk);
    let sends_fulls = pos == m - 1 || pos != m - 2;
    let (mut injected, mut combined, mut fulls_local, mut fulls_sent) = (0, 0, 0, 0);
    let total = data.len();
    let clen_of = move |k: usize| (total - k * chunk).min(chunk);
    let out = fabric.ring_send(v, dir);
    let in_ch = fabric.ring_recv(v, dir);

    loop {
        let mut progressed = false;

        if pos == 0 {
            while injected < kt && out.can_send() {
                let (k, off, clen) = (injected, injected * chunk, clen_of(injected));
                let ok = out.try_send_with(pack_tag(0, KIND_PARTIAL, k), clen, |dst| {
                    dst.copy_from_slice(&data[off..off + clen])
                });
                debug_assert!(ok, "can_send held and we are the sole producer");
                injected += 1;
                progressed = true;
            }
        }
        if pos == m - 1 {
            while fulls_sent < fulls_local && out.can_send() {
                let (k, off, clen) = (fulls_sent, fulls_sent * chunk, clen_of(fulls_sent));
                let ok = out.try_send_with(pack_tag(0, KIND_FULL, k), clen, |dst| {
                    dst.copy_from_slice(&data[off..off + clen])
                });
                debug_assert!(ok);
                fulls_sent += 1;
                progressed = true;
            }
        }

        while let Some(tag) = in_ch.peek_tag() {
            let (c, kind, k) = unpack_tag(tag);
            debug_assert_eq!(c, 0);
            let clen = clen_of(k);
            let off = k * chunk;
            if kind == KIND_PARTIAL {
                debug_assert!(pos > 0);
                debug_assert_eq!(k, combined, "partials must arrive in order");
                if pos < m - 1 && !out.can_send() {
                    break;
                }
                let rs = in_ch.peek();
                if pos < m - 1 {
                    // Fused combine straight into the outgoing slot — the
                    // same kernel call as the in-process ring.
                    let mut snd = out.reserve(clen);
                    rs.with_bytes(|inb| {
                        snd.with_bytes_mut(|dst| {
                            crate::kernels::add_bytes_into(dst, &data[off..off + clen], inb)
                        })
                    });
                    snd.publish(pack_tag(0, KIND_PARTIAL, k));
                } else {
                    rs.with_bytes(|inb| {
                        crate::kernels::add_bytes_assign(&mut data[off..off + clen], inb)
                    });
                    fulls_local += 1;
                }
                combined += 1;
                progressed = true;
            } else {
                debug_assert!(pos < m - 1, "the originator never receives fulls");
                debug_assert_eq!(k, fulls_local, "fulls must arrive in order");
                let forwards = sends_fulls;
                if forwards && !out.can_send() {
                    break;
                }
                let rs = in_ch.peek();
                rs.with_bytes(|bytes| data[off..off + clen].copy_from_slice(bytes));
                fulls_local += 1;
                if forwards {
                    let mut snd = out.reserve(clen);
                    rs.with_bytes(|bytes| snd.with_bytes_mut(|dst| dst.copy_from_slice(bytes)));
                    snd.publish(pack_tag(0, KIND_FULL, k));
                    fulls_sent += 1;
                }
                progressed = true;
            }
        }

        let finished = fulls_local == kt
            && injected == if pos == 0 { kt } else { 0 }
            && combined == if pos > 0 { kt } else { 0 }
            && fulls_sent == if sends_fulls { kt } else { 0 };
        if finished {
            break;
        }
        if !progressed {
            bgp_shmem::spin();
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic test patterns (shared by parent and workers)
// ---------------------------------------------------------------------------

/// Broadcast payload for a given seed: a byte pattern any process can
/// regenerate.
pub fn bcast_pattern(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            (seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                >> 56) as u8
        })
        .collect()
}

/// Node `v`'s allreduce input for a given seed, as raw f64 bytes.
pub fn allreduce_input(seed: u64, v: usize, count: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(count * 8);
    for i in 0..count {
        let x = seed
            .wrapping_mul(31)
            .wrapping_add(v as u64 * 17)
            .wrapping_add(i as u64);
        let val = (x % 1000) as f64 * 0.25 - 100.0;
        out.extend_from_slice(&val.to_le_bytes());
    }
    out
}

fn checksum(bytes: &[u8]) -> u64 {
    // FNV-1a.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Records (seqlock-published control words)
// ---------------------------------------------------------------------------

/// `SeqWords` over a record's words in the segment (version + REC_WORDS).
struct RecWords {
    base: *mut u64,
    _seg: Arc<ShmSegment>,
}

// SAFETY: all access is through atomics.
unsafe impl Send for RecWords {}
unsafe impl Sync for RecWords {}

impl RecWords {
    fn at(seg: &Arc<ShmSegment>, byte_off: usize) -> SeqLock<RecWords> {
        assert!(byte_off.is_multiple_of(8) && byte_off + REC_BYTES <= seg.payload_len());
        SeqLock::over(RecWords {
            // SAFETY: in-bounds per the assert.
            base: unsafe { seg.payload_ptr().add(byte_off) } as *mut u64,
            _seg: seg.clone(),
        })
    }
}

impl SeqWords for RecWords {
    fn seq(&self) -> &AtomicU64 {
        // SAFETY: in-bounds, 8-aligned, atomic-only access.
        unsafe { AtomicU64::from_ptr(self.base) }
    }

    fn n_words(&self) -> usize {
        REC_WORDS
    }

    fn word(&self, i: usize) -> &AtomicU64 {
        assert!(i < REC_WORDS);
        // SAFETY: as for `seq`.
        unsafe { AtomicU64::from_ptr(self.base.add(1 + i)) }
    }
}

// ---------------------------------------------------------------------------
// The worker loop
// ---------------------------------------------------------------------------

/// Base pointer of node `v`'s result region (`l.max_msg` bytes). Written
/// only by node `v` (before its status publish), read only by the parent
/// (after observing that publish) — release/acquire on the status record
/// orders the two; callers materialize the slice flavor they need.
unsafe fn result_ptr(seg: &ShmSegment, l: &ProcLayout, v: usize) -> *mut u8 {
    seg.payload_ptr().add(l.result_off(v))
}

fn run_job(
    fabric: &Fabric<ProcSlots>,
    seg: &Arc<ShmSegment>,
    l: &ProcLayout,
    v: usize,
    job: &[u64; REC_WORDS],
) {
    let (kind, root, len, seed) = (job[1], job[2] as usize, job[3] as usize, job[4]);
    // SAFETY: node v writes only its own region; see `result_ptr`.
    let region = unsafe { std::slice::from_raw_parts_mut(result_ptr(seg, l, v), l.max_msg) };
    let out_len = match kind {
        JOB_BCAST => {
            let mut buf = if v == root {
                bcast_pattern(seed, len)
            } else {
                vec![0u8; len]
            };
            node_bcast(fabric, v, root, &mut buf);
            region[..len].copy_from_slice(&buf);
            len
        }
        JOB_ALLREDUCE => {
            let mut buf = allreduce_input(seed, v, len / 8);
            node_allreduce_f64(fabric, v, &mut buf);
            region[..len].copy_from_slice(&buf);
            len
        }
        _ => 0,
    };
    let status = RecWords::at(seg, l.status_off(v));
    status.publish(&[job[0], 0, checksum(&region[..out_len]), 0, 0]);
}

/// Worker-process entry hook. **Call this first in `main`** of any binary
/// that constructs a [`ProcCluster`] (the re-exec lands back in that same
/// binary): if the worker environment variables are present, this function
/// attaches the segment, serves jobs until [`shutdown`](ProcCluster::shutdown)
/// (or until the parent dies / the segment is poisoned), and **exits the
/// process**. Returns `false` when not a worker.
pub fn maybe_worker() -> bool {
    if std::env::var_os(ENV_WORKER).is_none() {
        return false;
    }
    let path = PathBuf::from(std::env::var_os(ENV_SEG).expect("worker without segment path"));
    let v: usize = std::env::var(ENV_NODE)
        .expect("worker without node id")
        .parse()
        .expect("bad node id");
    let code = match worker_loop(&path, v) {
        Ok(()) => 0,
        Err(_) => 3,
    };
    std::process::exit(code);
}

fn worker_loop(path: &std::path::Path, v: usize) -> Result<(), ProcError> {
    let seg = Arc::new(ShmSegment::open(path)?);
    let l = ProcLayout::from_segment(&seg);
    let fabric = l.fabric(&seg, false);
    let job_rec = RecWords::at(&seg, l.job_off());
    let ppid = bgp_shmem::proc::parent_pid();
    let mut done = 0u64;
    let mut job = [0u64; REC_WORDS];
    let mut idle = 0u32;
    loop {
        job_rec.read_into(&mut job);
        if job[0] <= done {
            // No new job. Poll cheaply; check liveness/poison only every
            // few thousand spins to keep the idle loop light.
            idle = idle.wrapping_add(1);
            if idle.is_multiple_of(4096) {
                if bgp_shmem::proc::parent_pid() != ppid {
                    return Ok(()); // orphaned: the parent died
                }
                seg.check_healthy()?;
            }
            std::thread::yield_now();
            continue;
        }
        done = job[0];
        match job[1] {
            JOB_EXIT => return Ok(()),
            JOB_CRASH if job[2] as usize == v => {
                // Crash injection: die without a status, mid-"collective".
                std::process::exit(42);
            }
            JOB_CRASH => {
                // Everyone else acknowledges and keeps serving.
                let status = RecWords::at(&seg, l.status_off(v));
                status.publish(&[job[0], 0, 0, 0, 0]);
            }
            _ => run_job(&fabric, &seg, &l, v, &job),
        }
    }
}

// ---------------------------------------------------------------------------
// The parent-side cluster
// ---------------------------------------------------------------------------

/// A cluster of `m` single-rank nodes, each its own OS process, over one
/// shared segment. The creating process is node 0 and participates in
/// every collective; nodes `1..m` are spawned workers. See the module docs
/// for the control protocol.
pub struct ProcCluster {
    seg: Arc<ShmSegment>,
    layout: ProcLayout,
    fabric: Fabric<ProcSlots>,
    workers: Vec<(usize, Child)>,
    job_id: u64,
    dead: bool,
}

impl ProcCluster {
    /// Spawn an `m`-node cross-process cluster with `window`-chunk links of
    /// `chunk_bytes`, supporting messages up to `max_msg` bytes.
    pub fn new(
        m: usize,
        chunk_bytes: usize,
        window: usize,
        max_msg: usize,
    ) -> Result<Self, ProcError> {
        assert!(m >= 1, "a cluster needs at least one node");
        let layout = ProcLayout {
            m,
            chunk_bytes,
            window,
            max_msg,
        };
        let seg = Arc::new(ShmSegment::create(
            layout.payload_len(),
            &layout.geometry(),
        )?);
        let fabric = layout.fabric(&seg, true);
        let exe = std::env::current_exe().map_err(ProcError::Spawn)?;
        let mut workers = Vec::new();
        for v in 1..m {
            let child = Command::new(&exe)
                .env(ENV_WORKER, "1")
                .env(ENV_SEG, seg.path())
                .env(ENV_NODE, v.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .spawn()
                .map_err(ProcError::Spawn);
            match child {
                Ok(c) => workers.push((v, c)),
                Err(e) => {
                    // Kill what we spawned; the Drop impl can't run yet.
                    for (_, mut c) in workers {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    return Err(e);
                }
            }
        }
        Ok(ProcCluster {
            seg,
            layout,
            fabric,
            workers,
            job_id: 0,
            dead: false,
        })
    }

    /// Nodes.
    pub fn n_nodes(&self) -> usize {
        self.layout.m
    }

    /// This process's (node 0's) fabric view — lets tests observe link
    /// counters across all processes (the cursors are segment words).
    pub fn fabric(&self) -> &Fabric<ProcSlots> {
        &self.fabric
    }

    /// The segment path (diagnostics).
    pub fn segment_path(&self) -> &std::path::Path {
        self.seg.path()
    }

    fn check_usable(&self, len: usize) -> Result<(), ProcError> {
        if self.dead {
            return Err(ProcError::Poisoned {
                code: self.seg.poisoned().unwrap_or(POISON_WORKER_DEATH),
            });
        }
        self.seg.check_healthy()?;
        assert!(
            len <= self.layout.max_msg,
            "message exceeds segment regions"
        );
        Ok(())
    }

    fn publish_job(&mut self, kind: u64, root: u64, len: u64, seed: u64) -> u64 {
        self.job_id += 1;
        let job = RecWords::at(&self.seg, self.layout.job_off());
        job.publish(&[self.job_id, kind, root, len, seed]);
        self.job_id
    }

    /// Wait until every worker has published a status for `job`, polling
    /// worker liveness. On a worker death: poison the segment, mark the
    /// cluster dead, and report which node died — a clean typed error, not
    /// a hang.
    fn gather(&mut self, job: u64) -> Result<(), ProcError> {
        let mut rec = [0u64; REC_WORDS];
        for i in 0..self.workers.len() {
            let (v, _) = self.workers[i];
            let status = RecWords::at(&self.seg, self.layout.status_off(v));
            let mut last_live_check = Instant::now();
            loop {
                status.read_into(&mut rec);
                if rec[0] == job {
                    if rec[1] != 0 {
                        return Err(ProcError::WorkerFailed {
                            node: v,
                            status: rec[1],
                        });
                    }
                    break;
                }
                if last_live_check.elapsed() > Duration::from_millis(20) {
                    last_live_check = Instant::now();
                    if let Some(dead) = self.any_dead_worker() {
                        self.seg.poison(POISON_WORKER_DEATH);
                        self.dead = true;
                        self.reap();
                        return Err(ProcError::WorkerCrashed { node: dead, job });
                    }
                }
                std::thread::yield_now();
            }
        }
        Ok(())
    }

    fn any_dead_worker(&mut self) -> Option<usize> {
        for (v, c) in &mut self.workers {
            if let Ok(Some(_)) = c.try_wait() {
                return Some(*v);
            }
        }
        None
    }

    fn reap(&mut self) {
        for (_, c) in &mut self.workers {
            let _ = c.kill();
            let _ = c.wait();
        }
        self.workers.clear();
    }

    /// Cluster broadcast: node `root`'s deterministic
    /// [`bcast_pattern`]`(seed, len)` payload lands on every node. Returns
    /// each node's received bytes, in node order, read back from the
    /// segment's result regions.
    pub fn bcast(&mut self, root: usize, seed: u64, len: usize) -> Result<Vec<Vec<u8>>, ProcError> {
        assert!(root < self.layout.m, "root out of range");
        self.check_usable(len)?;
        let job = self.publish_job(JOB_BCAST, root as u64, len as u64, seed);
        // Participate as node 0.
        let mut buf = if root == 0 {
            bcast_pattern(seed, len)
        } else {
            vec![0u8; len]
        };
        node_bcast(&self.fabric, 0, root, &mut buf);
        self.finish_own(job, &buf);
        self.gather(job)?;
        Ok(self.collect_results(len))
    }

    /// Cluster allreduce over `count` doubles: node `v` contributes
    /// [`allreduce_input`]`(seed, v, count)`. Returns each node's result
    /// bytes (all identical on success), in node order.
    pub fn allreduce(&mut self, seed: u64, count: usize) -> Result<Vec<Vec<u8>>, ProcError> {
        self.check_usable(count * 8)?;
        let job = self.publish_job(JOB_ALLREDUCE, 0, (count * 8) as u64, seed);
        let mut buf = allreduce_input(seed, 0, count);
        node_allreduce_f64(&self.fabric, 0, &mut buf);
        self.finish_own(job, &buf);
        self.gather(job)?;
        Ok(self.collect_results(count * 8))
    }

    /// Crash injection (tests): direct the worker for `node` to exit
    /// mid-job, then gather — which must report the crash.
    pub fn inject_crash(&mut self, node: usize) -> Result<(), ProcError> {
        assert!(node >= 1 && node < self.layout.m, "can only crash a worker");
        self.check_usable(0)?;
        let job = self.publish_job(JOB_CRASH, node as u64, 0, 0);
        let status = RecWords::at(&self.seg, self.layout.status_off(0));
        status.publish(&[job, 0, 0, 0, 0]);
        self.gather(job)
    }

    fn finish_own(&self, job: u64, out: &[u8]) {
        // SAFETY: node 0's own region; ordered by the status publish.
        let region = unsafe {
            std::slice::from_raw_parts_mut(
                result_ptr(&self.seg, &self.layout, 0),
                self.layout.max_msg,
            )
        };
        region[..out.len()].copy_from_slice(out);
        let status = RecWords::at(&self.seg, self.layout.status_off(0));
        status.publish(&[job, 0, checksum(out), 0, 0]);
    }

    fn collect_results(&self, len: usize) -> Vec<Vec<u8>> {
        (0..self.layout.m)
            .map(|v| {
                // SAFETY: read-only view after all statuses acked job
                // completion (acquire on each status record).
                let region = unsafe {
                    std::slice::from_raw_parts(result_ptr(&self.seg, &self.layout, v), len)
                };
                region.to_vec()
            })
            .collect()
    }

    /// Orderly shutdown: direct workers to exit and wait for them.
    pub fn shutdown(mut self) -> Result<(), ProcError> {
        self.shutdown_inner();
        Ok(())
    }

    fn shutdown_inner(&mut self) {
        if !self.workers.is_empty() && !self.dead {
            self.job_id += 1;
            let job = RecWords::at(&self.seg, self.layout.job_off());
            job.publish(&[self.job_id, JOB_EXIT, 0, 0, 0]);
            let deadline = Instant::now() + Duration::from_secs(5);
            for (_, c) in &mut self.workers {
                loop {
                    match c.try_wait() {
                        Ok(Some(_)) => break,
                        _ if Instant::now() > deadline => {
                            let _ = c.kill();
                            let _ = c.wait();
                            break;
                        }
                        _ => std::thread::yield_now(),
                    }
                }
            }
            self.workers.clear();
        }
    }
}

impl Drop for ProcCluster {
    fn drop(&mut self) {
        self.shutdown_inner();
        self.reap();
    }
}
