//! The inter-node transport: paced byte-chunk channels and the fabric
//! wiring them into the BG/P collective topology.
//!
//! The real machine moves collective traffic over the combining **tree**
//! (broadcast down, reduce up) and the 3-D **torus** (the ring phases of the
//! multi-color allreduce). `bgp-sim` models both as bandwidth servers; this
//! module is their *real-thread* counterpart: a [`ChunkChannel`] is a
//! bounded single-producer/single-consumer ring of fixed-size byte chunks —
//! the bounded capacity is the link's pacing window (a producer that runs
//! ahead of the consumer blocks, exactly like a full injection FIFO), and
//! the chunk size is the packetization granularity. A [`Fabric`] owns one
//! channel per directed link: tree `up`/`down` edges over a fixed binary
//! tree of node ids, plus `plus`/`minus` ring edges standing in for the
//! torus neighbor links, mirroring the `bgp-sim` server topology.
//!
//! What is real vs. modeled: the *synchronization* (slot cycle-tags with
//! release/acquire hand-off, backpressure, per-chunk copies) is real and
//! runs under the `bgp-check` model scheduler like every other primitive in
//! the workspace; the *timing* (link bandwidth, router hops) is not modeled
//! here — that remains `bgp-sim`'s job.
//!
//! ## Storage backends
//!
//! The cycle-tag protocol is written once, generic over a [`SlotStore`] —
//! the piece that says *where the slots live*:
//!
//! * [`HeapSlots`] (the default; `ChunkChannel` with no type argument) keeps
//!   the slots in process memory behind the `bgp-shmem` sync facade, so the
//!   whole protocol runs under the `bgp-check` model scheduler.
//! * `ProcSlots` (in [`crate::proc`], non-`model` builds) views the same
//!   slot layout inside an mmap'd [`bgp_shmem::proc::ShmSegment`] shared by
//!   several *processes*. The protocol code — every load, store, ordering,
//!   and mutation hook — is byte-for-byte the same generic functions; only
//!   the storage differs, which is what lets the model-checked in-process
//!   channel stand as the correctness oracle for the cross-process one.
//!
//! ## The slot-loan protocol
//!
//! The channel's primary interface is a pair of **loans** over the slot
//! buffers themselves, so protocols can produce and consume payloads *in
//! place* instead of staging them through caller-owned buffers:
//!
//! * [`reserve`](ChunkChannel::reserve) hands the producer a [`SendSlot`]
//!   guard for a declared payload length: exactly `len` bytes of the slot
//!   are writable through it, and nothing becomes visible to the consumer
//!   until [`publish`](SendSlot::publish). Dropping the guard without
//!   publishing releases the cycle cleanly — the ticket stays free and the
//!   next `reserve` returns the same slot.
//! * [`peek`](ChunkChannel::peek) hands the consumer a [`RecvSlot`] guard:
//!   tag, length, and payload are readable in place; dropping the guard
//!   retires the slot back to the producer. The guard's lifetime *is* the
//!   loan — no consumer access can outlive the retire.
//!
//! The cycle-tagged SPSC discipline already guarantees exclusivity (ticket
//! `t` owns its slot from the producer's acquire of `seq == t` to the
//! publish, and from the consumer's acquire of `seq == t + 1` to the
//! retire), so the loans add no synchronization — only access. The
//! closure-style [`send_with`](ChunkChannel::send_with) /
//! [`recv_with`](ChunkChannel::recv_with) helpers are thin wrappers over
//! the loans; a copy through them is the *caller's* copy, never the
//! transport's. Per chunk, the transport itself imposes **zero** payload
//! memcpys.

use bgp_shmem::pad::CachePadded;
use bgp_shmem::sync::atomic::{AtomicUsize, Ordering};
use bgp_shmem::sync::cell::UnsafeCell;
use bgp_shmem::{model_support, spin};

/// Where a [`ChunkChannel`]'s slots live.
///
/// An implementor provides `cap` slots of `chunk_bytes` payload each, one
/// cycle-tag `seq` word per slot, and the producer/consumer cursors. The
/// protocol layered on top never touches storage except through these
/// methods, so a store can be heap memory behind the model facade
/// ([`HeapSlots`]) or a view into an mmap'd segment shared across processes
/// (`ProcSlots` in [`crate::proc`]).
///
/// # Safety
///
/// Implementors must guarantee, for the lifetime of the store:
///
/// * `seq(i)`, `send_cursor()`, and `recv_cursor()` return references to
///   atomics at stable addresses, and `seq(i)` of a fresh store reads `i`
///   with both cursors 0 (the protocol's initial state);
/// * the header and data accessors address disjoint per-slot storage of at
///   least `chunk_bytes` payload bytes, stable for the store's lifetime and
///   shared with every other view of the same channel (for a cross-process
///   store: the same physical bytes in every mapping).
///
/// The *callers* (the protocol methods below) uphold the exclusivity
/// contract on the unsafe accessors: header/data of slot `i` are only
/// touched by the ticket that owns the slot per the cycle-tag discipline.
pub unsafe trait SlotStore: Send + Sync {
    /// Number of slots (the pacing window).
    fn cap(&self) -> usize;
    /// Payload capacity of one slot.
    fn chunk_bytes(&self) -> usize;
    /// The cycle tag of slot `i`.
    fn seq(&self, i: usize) -> &AtomicUsize;
    /// Next ticket to send; written only by the producer.
    fn send_cursor(&self) -> &AtomicUsize;
    /// Next ticket to receive; written only by the consumer.
    fn recv_cursor(&self) -> &AtomicUsize;
    /// Write slot `i`'s header (tag + payload length).
    ///
    /// # Safety
    ///
    /// Caller must own slot `i`'s cycle (producer side, before publish).
    unsafe fn set_header(&self, i: usize, tag: u64, len: usize);
    /// Read slot `i`'s header `(tag, len)`.
    ///
    /// # Safety
    ///
    /// Caller must have acquire-observed the slot as published and not yet
    /// retired it.
    unsafe fn header(&self, i: usize) -> (u64, usize);
    /// Read `len` bytes of slot `i`'s payload in place.
    ///
    /// # Safety
    ///
    /// As [`Self::header`], with `len` no larger than the published length.
    unsafe fn with_data<R>(&self, i: usize, len: usize, f: impl FnOnce(&[u8]) -> R) -> R;
    /// Write `len` bytes of slot `i`'s payload in place.
    ///
    /// # Safety
    ///
    /// Caller must own slot `i`'s cycle exclusively (producer side, before
    /// publish), with `len` at most `chunk_bytes`.
    unsafe fn with_data_mut<R>(&self, i: usize, len: usize, f: impl FnOnce(&mut [u8]) -> R) -> R;
}

/// One slot of a [`HeapSlots`] store: a cycle-tagged header plus a
/// fixed-size payload. `seq` follows the workspace's slot protocol: `t` =
/// free for ticket `t`, `t + 1` = published, `t + cap` = consumed (free for
/// ticket `t + cap`).
struct Slot {
    seq: AtomicUsize,
    tag: UnsafeCell<u64>,
    len: UnsafeCell<usize>,
    data: UnsafeCell<Box<[u8]>>,
}

// SAFETY: the seq protocol orders all cell accesses (publish with Release,
// observe with Acquire), exactly as in the FIFOs of `bgp-shmem`.
unsafe impl Send for Slot {}
unsafe impl Sync for Slot {}

/// The in-process slot store: heap slots behind the `bgp-shmem` sync
/// facade, so `model` builds run the whole protocol under `bgp-check`.
pub struct HeapSlots {
    slots: Box<[Slot]>,
    cap: usize,
    chunk_bytes: usize,
    send_cursor: CachePadded<AtomicUsize>,
    recv_cursor: CachePadded<AtomicUsize>,
}

impl HeapSlots {
    fn new(cap: usize, chunk_bytes: usize) -> Self {
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                tag: UnsafeCell::new(0),
                len: UnsafeCell::new(0),
                data: UnsafeCell::new(vec![0u8; chunk_bytes].into_boxed_slice()),
            })
            .collect();
        HeapSlots {
            slots,
            cap,
            chunk_bytes,
            send_cursor: CachePadded::new(AtomicUsize::new(0)),
            recv_cursor: CachePadded::new(AtomicUsize::new(0)),
        }
    }
}

// SAFETY: slots live as long as the store, `seq(i)` initializes to `i`, and
// the cell accessors hand out disjoint per-slot storage.
unsafe impl SlotStore for HeapSlots {
    #[inline]
    fn cap(&self) -> usize {
        self.cap
    }

    #[inline]
    fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    #[inline]
    fn seq(&self, i: usize) -> &AtomicUsize {
        &self.slots[i].seq
    }

    #[inline]
    fn send_cursor(&self) -> &AtomicUsize {
        &self.send_cursor
    }

    #[inline]
    fn recv_cursor(&self) -> &AtomicUsize {
        &self.recv_cursor
    }

    unsafe fn set_header(&self, i: usize, tag: u64, len: usize) {
        let slot = &self.slots[i];
        slot.tag.with_mut(|p| *p = tag);
        slot.len.with_mut(|p| *p = len);
    }

    unsafe fn header(&self, i: usize) -> (u64, usize) {
        let slot = &self.slots[i];
        (slot.tag.with(|p| *p), slot.len.with(|p| *p))
    }

    unsafe fn with_data<R>(&self, i: usize, len: usize, f: impl FnOnce(&[u8]) -> R) -> R {
        self.slots[i].data.with(|p| f(&(&*p)[..len]))
    }

    unsafe fn with_data_mut<R>(&self, i: usize, len: usize, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.slots[i].data.with_mut(|p| f(&mut (&mut *p)[..len]))
    }
}

/// A bounded SPSC channel of fixed-size byte chunks with a pacing window.
///
/// * **Single producer, single consumer** — one thread sends, one receives,
///   at any given time. The collectives uphold this by fixed endpoint
///   ownership: each directed link is produced by one node's network rank
///   and consumed by one neighbor rank.
/// * **Paced**: capacity is the link window; `send_*` blocks (spin-yield)
///   when the consumer lags by `capacity` chunks.
/// * **Tagged**: each chunk carries a `u64` tag (flow id / kind / sequence,
///   packed by the caller) so multiple flows can share a link and the
///   consumer can dispatch without consuming ([`peek_tag`](Self::peek_tag)).
/// * **Backend-generic**: the default store is the in-process [`HeapSlots`];
///   `crate::proc` instantiates the same protocol over an mmap'd segment
///   shared by separate worker processes.
pub struct ChunkChannel<S: SlotStore = HeapSlots> {
    store: S,
}

impl ChunkChannel {
    /// An in-process channel of `cap` in-flight chunks of `chunk_bytes`
    /// each.
    ///
    /// `cap` must be at least 2: with a single slot the cycle tags
    /// degenerate — round `t`'s *published* tag (`t + 1`) equals round
    /// `t + 1`'s *free* tag (`t + cap`), so a producer could reclaim a slot
    /// the consumer has not read yet (found by the `bgp-check` model).
    pub fn new(cap: usize, chunk_bytes: usize) -> Self {
        assert!(
            cap >= 2,
            "channel needs at least two slots (cycle-tag protocol)"
        );
        assert!(chunk_bytes >= 1, "chunks must hold at least one byte");
        ChunkChannel {
            store: HeapSlots::new(cap, chunk_bytes),
        }
    }
}

impl<S: SlotStore> ChunkChannel<S> {
    /// The same protocol over caller-provided storage (the cross-process
    /// backend). The store must be freshly initialized per the [`SlotStore`]
    /// contract; geometry rules are as for [`ChunkChannel::new`].
    pub fn over(store: S) -> Self {
        assert!(
            store.cap() >= 2,
            "channel needs at least two slots (cycle-tag protocol)"
        );
        assert!(
            store.chunk_bytes() >= 1,
            "chunks must hold at least one byte"
        );
        ChunkChannel { store }
    }

    /// Payload capacity of one chunk.
    #[inline]
    pub fn chunk_bytes(&self) -> usize {
        self.store.chunk_bytes()
    }

    /// In-flight chunk capacity (the pacing window).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.store.cap()
    }

    /// Chunks ever sent (producer-side view).
    pub fn sent(&self) -> usize {
        self.store.send_cursor().load(Ordering::Relaxed)
    }

    /// Chunks ever received (consumer-side view).
    pub fn received(&self) -> usize {
        self.store.recv_cursor().load(Ordering::Relaxed)
    }

    /// Consumer-side: has ticket `h` been published (and not yet retired by
    /// us)? This acquire is *the* validated load every consumer entry point
    /// goes through — `peek`, `try_peek`, and `peek_tag` all gate header
    /// access on it, so a slot mid-write by the producer is never readable.
    #[inline]
    fn published(&self, h: usize) -> bool {
        self.store.seq(h % self.store.cap()).load(Ordering::Acquire) == h + 1
    }

    /// Producer: is there room to send without blocking? Once true it stays
    /// true until this producer sends (space only grows from the producer's
    /// point of view), so it can safely gate work that must not block.
    pub fn can_send(&self) -> bool {
        let t = self.store.send_cursor().load(Ordering::Relaxed);
        self.store.seq(t % self.store.cap()).load(Ordering::Acquire) == t
    }

    /// Producer: loan the next slot for an in-place write of `len` payload
    /// bytes, blocking while the window is full. The loan exposes exactly
    /// `len` bytes — never the rest of the slot, whose contents are stale
    /// payloads from prior tickets. Nothing is visible to the consumer
    /// until [`SendSlot::publish`]; dropping the guard unpublished releases
    /// the cycle cleanly (the ticket stays free).
    pub fn reserve(&self, len: usize) -> SendSlot<'_, S> {
        self.check_len(len);
        let t = self.store.send_cursor().load(Ordering::Relaxed);
        let seq = self.store.seq(t % self.store.cap());
        while seq.load(Ordering::Acquire) != t {
            spin();
        }
        SendSlot { ch: self, t, len }
    }

    /// Producer: loan the next slot for `len` payload bytes if the window
    /// has room, `None` when full.
    pub fn try_reserve(&self, len: usize) -> Option<SendSlot<'_, S>> {
        self.check_len(len);
        let t = self.store.send_cursor().load(Ordering::Relaxed);
        if self.store.seq(t % self.store.cap()).load(Ordering::Acquire) != t {
            return None;
        }
        Some(SendSlot { ch: self, t, len })
    }

    #[inline]
    fn check_len(&self, len: usize) {
        assert!(
            len <= self.store.chunk_bytes(),
            "chunk of {len} bytes exceeds channel chunk size {}",
            self.store.chunk_bytes()
        );
    }

    /// Producer: publish a chunk, blocking while the window is full. `fill`
    /// writes the payload directly into the slot (it receives exactly `len`
    /// bytes of it — every byte it is handed is exactly what `publish`
    /// exposes, so covering the slice covers the chunk).
    pub fn send_with(&self, tag: u64, len: usize, fill: impl FnOnce(&mut [u8])) {
        let mut s = self.reserve(len);
        s.with_bytes_mut(fill);
        s.publish(tag);
    }

    /// Producer: publish a chunk if the window has room; returns `false`
    /// (without calling `fill`) when full.
    pub fn try_send_with(&self, tag: u64, len: usize, fill: impl FnOnce(&mut [u8])) -> bool {
        let Some(mut s) = self.try_reserve(len) else {
            return false;
        };
        s.with_bytes_mut(fill);
        s.publish(tag);
        true
    }

    /// Consumer: the tag of the next chunk, if one is ready. Does not
    /// consume — the dispatch primitive for links shared by several flows.
    /// Routed through the same acquire-validated cycle check as
    /// [`peek`](Self::peek): without it, a concurrent producer mid-publish
    /// could yield a stale or torn tag.
    pub fn peek_tag(&self) -> Option<u64> {
        let h = self.store.recv_cursor().load(Ordering::Relaxed);
        // Seeded bug: the unvalidated read peek_tag originally shipped with
        // — skipping the published() gate makes the header load race the
        // producer's header write, which the model checker reports.
        if !model_support::seeded("chunk_peek_tag_unvalidated") && !self.published(h) {
            return None;
        }
        // SAFETY: published and not yet consumed — header is stable.
        Some(unsafe { self.store.header(h % self.store.cap()) }.0)
    }

    /// Consumer: loan the next published chunk for in-place reads, blocking
    /// until one is published. The slot retires (returns to the producer)
    /// when the guard drops.
    pub fn peek(&self) -> RecvSlot<'_, S> {
        let h = self.store.recv_cursor().load(Ordering::Relaxed);
        while !self.published(h) {
            spin();
        }
        RecvSlot::acquired(self, h)
    }

    /// Consumer: loan the next chunk if one is published, `None` otherwise.
    pub fn try_peek(&self) -> Option<RecvSlot<'_, S>> {
        let h = self.store.recv_cursor().load(Ordering::Relaxed);
        if !self.published(h) {
            return None;
        }
        Some(RecvSlot::acquired(self, h))
    }

    /// Consumer: receive the next chunk, blocking until one is published.
    /// `f` reads the payload in place (no intermediate copy); the slot is
    /// recycled after it returns.
    pub fn recv_with<R>(&self, f: impl FnOnce(u64, &[u8]) -> R) -> R {
        let s = self.peek();
        s.with_bytes(|b| f(s.tag(), b))
    }

    /// Consumer: receive if a chunk is ready; `None` (without calling `f`)
    /// otherwise.
    pub fn try_recv_with<R>(&self, f: impl FnOnce(u64, &[u8]) -> R) -> Option<R> {
        let s = self.try_peek()?;
        Some(s.with_bytes(|b| f(s.tag(), b)))
    }
}

/// A producer's loan of one channel slot (see [`ChunkChannel::reserve`]).
///
/// The cycle-tag acquire in `reserve` made ticket `t`'s slot exclusively
/// ours; writes through [`with_bytes_mut`](Self::with_bytes_mut) land
/// directly in the slot buffer, clamped to the `len` declared at `reserve` —
/// stale bytes beyond it (payloads from `cap` tickets ago) are never handed
/// out as writable scratch. [`publish`](Self::publish) makes those `len`
/// bytes (plus the tag) visible to the consumer and advances the window;
/// dropping the guard without publishing leaves the ticket free — the next
/// `reserve` re-loans the same slot, so an abandoned loan costs nothing.
///
/// SPSC discipline: at most one `SendSlot` may be live per channel (a
/// second `reserve` before `publish` would loan the same ticket twice).
pub struct SendSlot<'a, S: SlotStore = HeapSlots> {
    ch: &'a ChunkChannel<S>,
    t: usize,
    len: usize,
}

impl<S: SlotStore> SendSlot<'_, S> {
    /// Payload capacity of the loaned slot (the channel's chunk size).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.ch.store.chunk_bytes()
    }

    /// The payload length declared at `reserve` — what `publish` will ship
    /// and exactly how many bytes [`with_bytes_mut`](Self::with_bytes_mut)
    /// exposes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the loan carries no payload.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write the slot payload in place. The slice covers exactly the `len`
    /// bytes declared at `reserve`. The slot is *not* zeroed between loans:
    /// within that slice, bytes the closure does not write still hold the
    /// payload from `cap` tickets ago.
    pub fn with_bytes_mut<R>(&mut self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let i = self.t % self.ch.store.cap();
        // SAFETY: ticket t owns this slot exclusively until publish, and
        // len was checked against chunk_bytes at reserve.
        unsafe { self.ch.store.with_data_mut(i, self.len, f) }
    }

    /// Publish the loaned bytes under `tag` and advance the window.
    pub fn publish(self, tag: u64) {
        let ch = self.ch;
        let i = self.t % ch.store.cap();
        // SAFETY: seq == t means ticket t owns the slot exclusively.
        unsafe { ch.store.set_header(i, tag, self.len) };
        // Seeded bug: a relaxed publication no longer carries the payload.
        let order = model_support::relaxed_if("chunk_publish_relaxed", Ordering::Release);
        ch.store.seq(i).store(self.t + 1, order);
        ch.store.send_cursor().store(self.t + 1, Ordering::Relaxed);
    }
}

/// A consumer's loan of one published chunk (see [`ChunkChannel::peek`]).
///
/// Tag, length, and payload are readable in place for the guard's
/// lifetime; dropping it retires the slot back to the producer. No access
/// can outlive the retire — the borrow checker enforces what the FIFO
/// protocol promises.
pub struct RecvSlot<'a, S: SlotStore = HeapSlots> {
    ch: &'a ChunkChannel<S>,
    h: usize,
    tag: u64,
    len: usize,
}

impl<'a, S: SlotStore> RecvSlot<'a, S> {
    /// Build the guard after the `seq == h + 1` acquire (header is stable
    /// until we retire).
    fn acquired(ch: &'a ChunkChannel<S>, h: usize) -> Self {
        // SAFETY: published and exclusively ours until the retire on drop.
        let (tag, len) = unsafe { ch.store.header(h % ch.store.cap()) };
        RecvSlot { ch, h, tag, len }
    }

    /// The chunk's tag.
    #[inline]
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// The chunk's payload length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the chunk carries no payload.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read the payload in place (exactly [`len`](Self::len) bytes).
    pub fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let i = self.h % self.ch.store.cap();
        // SAFETY: the Acquire of seq == h + 1 ordered us after the
        // producer's writes; the producer cannot touch the slot again
        // until the release store in drop.
        unsafe { self.ch.store.with_data(i, self.len, f) }
    }
}

impl<S: SlotStore> Drop for RecvSlot<'_, S> {
    fn drop(&mut self) {
        let ch = self.ch;
        let i = self.h % ch.store.cap();
        // Seeded bug: a relaxed retire lets the producer's next-round write
        // race the reads this guard performed.
        let order = model_support::relaxed_if("chunk_retire_relaxed", Ordering::Release);
        ch.store.seq(i).store(self.h + ch.store.cap(), order);
        ch.store.recv_cursor().store(self.h + 1, Ordering::Relaxed);
    }
}

/// Per-operation chunk tags for links multiplexing many in-flight
/// operations (the nonblocking scheduler in `bgp-sched`).
///
/// The blocking collectives own every link for the duration of one call, so
/// a bare chunk index (or a small color/kind pack) suffices as a tag. Once
/// operations overlap, a consumer must be able to dispatch any arriving
/// chunk to the right operation *without consuming it* — so the tag carries
/// the operation id, a kind (broadcast data / allreduce partial / allreduce
/// full), and the chunk sequence number:
///
/// ```text
/// bit 63..26: op id      (38 bits, monotone, never reused)
/// bit 25..24: kind       (2 bits)
/// bit 23..0 : chunk seq  (24 bits → 16M chunks per op)
/// ```
pub mod optag {
    /// Broadcast payload chunk.
    pub const KIND_DATA: u64 = 0;
    /// Allreduce partial (accumulating hop by hop along the ring).
    pub const KIND_PARTIAL: u64 = 1;
    /// Allreduce fully-reduced chunk circulating back.
    pub const KIND_FULL: u64 = 2;

    const KIND_SHIFT: u32 = 24;
    const OP_SHIFT: u32 = 26;
    const K_MASK: u64 = (1 << KIND_SHIFT) - 1;

    /// Pack an operation id, kind, and chunk sequence into a link tag.
    #[inline]
    pub fn pack(op: u64, kind: u64, k: usize) -> u64 {
        debug_assert!(op < (1 << (64 - OP_SHIFT)), "op id overflows the tag");
        debug_assert!(kind < 4);
        debug_assert!((k as u64) < (1 << KIND_SHIFT), "chunk seq overflows");
        (op << OP_SHIFT) | (kind << KIND_SHIFT) | k as u64
    }

    /// Unpack a link tag into `(op, kind, chunk seq)`.
    #[inline]
    pub fn unpack(tag: u64) -> (u64, u64, usize) {
        (
            tag >> OP_SHIFT,
            (tag >> KIND_SHIFT) & 0x3,
            (tag & K_MASK) as usize,
        )
    }
}

/// Ring direction over the node ids (the torus stand-in): `Plus` sends
/// `v → (v+1) mod m`, `Minus` sends `v → (v-1) mod m`. The multi-color
/// allreduce runs different colors in different directions to use both
/// links at once (§V-C).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RingDir {
    /// Ascending node ids (wraps at `m-1 → 0`).
    Plus,
    /// Descending node ids (wraps at `0 → m-1`).
    Minus,
}

/// The inter-node link fabric: one [`ChunkChannel`] per directed link.
///
/// Tree links follow a fixed binary tree over node ids (`parent(v) =
/// (v-1)/2`, children `2v+1`/`2v+2` — the same shape `bgp-sim` gives its
/// tree network): `up[v]` carries `v → parent(v)`, `down[v]` carries
/// `parent(v) → v`. Ring links `plus[v]`/`minus[v]` connect ring neighbors
/// in each direction. Broadcast routing for an arbitrary root is computed
/// per operation by re-rooting the fixed tree: every non-root node receives
/// on the one port facing the root and forwards on all other incident
/// ports.
///
/// Like the channel itself, the fabric is generic over the slot store:
/// `Fabric` (default) wires in-process links; `crate::proc` attaches the
/// identical link set over one mmap'd segment so each node can live in its
/// own OS process.
pub struct Fabric<S: SlotStore = HeapSlots> {
    m: usize,
    chunk_bytes: usize,
    /// `up[v]`: v → parent(v). `None` for v = 0.
    up: Vec<Option<ChunkChannel<S>>>,
    /// `down[v]`: parent(v) → v. `None` for v = 0.
    down: Vec<Option<ChunkChannel<S>>>,
    /// `plus[v]`: v → (v+1) mod m. Empty when m == 1.
    plus: Vec<ChunkChannel<S>>,
    /// `minus[v]`: v → (v-1) mod m. Empty when m == 1.
    minus: Vec<ChunkChannel<S>>,
}

impl Fabric {
    /// An in-process fabric over `m` nodes with `window`-chunk links of
    /// `chunk_bytes` per chunk.
    pub fn new(m: usize, chunk_bytes: usize, window: usize) -> Self {
        assert!(m >= 1, "a fabric needs at least one node");
        let tree_link = |v: usize| {
            if v == 0 {
                None
            } else {
                Some(ChunkChannel::new(window, chunk_bytes))
            }
        };
        let ring = |m: usize| -> Vec<ChunkChannel> {
            if m > 1 {
                (0..m)
                    .map(|_| ChunkChannel::new(window, chunk_bytes))
                    .collect()
            } else {
                Vec::new()
            }
        };
        Fabric {
            m,
            chunk_bytes,
            up: (0..m).map(tree_link).collect(),
            down: (0..m).map(tree_link).collect(),
            plus: ring(m),
            minus: ring(m),
        }
    }
}

impl<S: SlotStore> Fabric<S> {
    /// Assemble a fabric from pre-built links (the cross-process attach
    /// path in `crate::proc`). Link vectors must follow the `new` shape:
    /// `up[0]`/`down[0]` are `None`, ring vectors are empty iff `m == 1`.
    // `crate::proc` is compiled out under the model facade (real syscalls).
    #[cfg_attr(feature = "model", allow(dead_code))]
    pub(crate) fn from_links(
        m: usize,
        chunk_bytes: usize,
        up: Vec<Option<ChunkChannel<S>>>,
        down: Vec<Option<ChunkChannel<S>>>,
        plus: Vec<ChunkChannel<S>>,
        minus: Vec<ChunkChannel<S>>,
    ) -> Self {
        assert!(m >= 1, "a fabric needs at least one node");
        assert_eq!(up.len(), m);
        assert_eq!(down.len(), m);
        assert_eq!(plus.len(), if m > 1 { m } else { 0 });
        assert_eq!(minus.len(), plus.len());
        Fabric {
            m,
            chunk_bytes,
            up,
            down,
            plus,
            minus,
        }
    }

    /// Node count.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.m
    }

    /// Payload capacity of every link's chunks.
    #[inline]
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Chunks ever sent across *all* links of the fabric (diagnostic: lets
    /// tests assert that degenerate operations — zero-length broadcasts,
    /// empty reductions — never touch the network).
    pub fn total_chunks_sent(&self) -> usize {
        let tree: usize = self
            .up
            .iter()
            .chain(self.down.iter())
            .flatten()
            .map(|ch| ch.sent())
            .sum();
        let ring: usize = self
            .plus
            .iter()
            .chain(self.minus.iter())
            .map(|ch| ch.sent())
            .sum();
        tree + ring
    }

    /// Tree parent of `v` (v > 0).
    pub fn parent(v: usize) -> usize {
        debug_assert!(v > 0);
        (v - 1) / 2
    }

    /// Tree children of `v` that exist in an `m`-node fabric.
    pub fn children(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        [2 * v + 1, 2 * v + 2].into_iter().filter(|&c| c < self.m)
    }

    /// The tree neighbor of `v` on the path toward `root` (v ≠ root): walk
    /// `root` upward; if the walk passes through `v`, the previous hop is
    /// the child of `v` facing the root, otherwise the path leaves `v`
    /// through its parent.
    fn toward(v: usize, root: usize) -> usize {
        debug_assert_ne!(v, root);
        let mut x = root;
        while x != v && x != 0 {
            let p = Self::parent(x);
            if p == v {
                return x;
            }
            x = p;
        }
        debug_assert_ne!(v, 0, "the tree root reaches every node downward");
        Self::parent(v)
    }

    /// The channel a non-root node `v` receives broadcast chunks on when
    /// the broadcast is rooted at node `root`.
    pub fn bcast_in(&self, v: usize, root: usize) -> &ChunkChannel<S> {
        assert_ne!(v, root, "the root has no inbound broadcast port");
        let t = Self::toward(v, root);
        if v > 0 && t == Self::parent(v) {
            self.down[v].as_ref().expect("v > 0 has a down link")
        } else {
            // t is the child of v facing the root: chunks flow up from it.
            self.up[t].as_ref().expect("children have up links")
        }
    }

    /// The channels node `v` forwards (or, at the root, injects) broadcast
    /// chunks on: every incident tree port except the inbound one.
    pub fn bcast_out(&self, v: usize, root: usize) -> Vec<&ChunkChannel<S>> {
        let toward = if v == root {
            None
        } else {
            Some(Self::toward(v, root))
        };
        let mut out = Vec::new();
        for c in self.children(v) {
            if Some(c) != toward {
                out.push(self.down[c].as_ref().expect("children have down links"));
            }
        }
        if v > 0 && Some(Self::parent(v)) != toward {
            out.push(self.up[v].as_ref().expect("v > 0 has an up link"));
        }
        out
    }

    /// The ring channel node `v` sends on in direction `dir` (m > 1).
    pub fn ring_send(&self, v: usize, dir: RingDir) -> &ChunkChannel<S> {
        match dir {
            RingDir::Plus => &self.plus[v],
            RingDir::Minus => &self.minus[v],
        }
    }

    /// The ring channel node `v` receives on in direction `dir` (m > 1):
    /// the sending channel of its upstream neighbor.
    pub fn ring_recv(&self, v: usize, dir: RingDir) -> &ChunkChannel<S> {
        match dir {
            RingDir::Plus => &self.plus[(v + self.m - 1) % self.m],
            RingDir::Minus => &self.minus[(v + 1) % self.m],
        }
    }

    /// Node `v`'s 0-based position along the ring in direction `dir`
    /// (position 0 is node 0 in both directions; the chain visits nodes in
    /// link order).
    pub fn ring_pos(&self, v: usize, dir: RingDir) -> usize {
        match dir {
            RingDir::Plus => v,
            RingDir::Minus => (self.m - v) % self.m,
        }
    }

    /// The node at ring position `pos` in direction `dir`.
    pub fn ring_node(&self, pos: usize, dir: RingDir) -> usize {
        match dir {
            RingDir::Plus => pos,
            RingDir::Minus => (self.m - pos) % self.m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn chunk_round_trip_preserves_tag_len_payload() {
        let ch = ChunkChannel::new(4, 64);
        assert!(ch.can_send());
        ch.send_with(0xBEEF, 5, |d| d.copy_from_slice(b"hello"));
        assert_eq!(ch.peek_tag(), Some(0xBEEF));
        let got = ch.recv_with(|tag, bytes| (tag, bytes.to_vec()));
        assert_eq!(got, (0xBEEF, b"hello".to_vec()));
        assert_eq!(ch.sent(), 1);
        assert_eq!(ch.received(), 1);
    }

    #[test]
    fn try_send_respects_window_and_recv_frees_it() {
        let ch = ChunkChannel::new(2, 8);
        assert!(ch.try_send_with(1, 1, |d| d[0] = 1));
        assert!(ch.try_send_with(2, 1, |d| d[0] = 2));
        assert!(!ch.can_send());
        assert!(!ch.try_send_with(3, 1, |_| panic!("fill must not run on a full window")));
        assert_eq!(ch.recv_with(|t, b| (t, b[0])), (1, 1));
        assert!(ch.can_send());
        assert!(ch.try_send_with(3, 1, |d| d[0] = 3));
        assert_eq!(ch.recv_with(|t, b| (t, b[0])), (2, 2));
        assert_eq!(ch.recv_with(|t, b| (t, b[0])), (3, 3));
        assert_eq!(ch.try_recv_with(|_, _| ()), None);
        assert_eq!(ch.peek_tag(), None);
    }

    #[test]
    fn paced_stream_across_threads_stays_in_order() {
        let ch = Arc::new(ChunkChannel::new(3, 16));
        let chunks = bgp_shmem::testing::stress_iters(10_000);
        let producer = {
            let ch = ch.clone();
            thread::spawn(move || {
                for k in 0..chunks {
                    ch.send_with(k as u64, 8, |d| {
                        d.copy_from_slice(&(k as u64).to_ne_bytes())
                    });
                }
            })
        };
        for k in 0..chunks {
            ch.recv_with(|tag, bytes| {
                assert_eq!(tag, k as u64);
                assert_eq!(bytes, (k as u64).to_ne_bytes());
            });
        }
        producer.join().unwrap();
    }

    #[test]
    fn zero_len_chunks_are_valid() {
        let ch = ChunkChannel::new(2, 4);
        ch.send_with(7, 0, |d| assert!(d.is_empty()));
        ch.recv_with(|tag, bytes| {
            assert_eq!(tag, 7);
            assert!(bytes.is_empty());
        });
    }

    #[test]
    #[should_panic(expected = "exceeds channel chunk size")]
    fn oversized_chunk_is_rejected() {
        let ch = ChunkChannel::new(2, 4);
        ch.send_with(0, 5, |_| {});
    }

    #[test]
    #[should_panic(expected = "exceeds channel chunk size")]
    fn oversized_reserve_is_rejected() {
        let ch = ChunkChannel::new(2, 4);
        let _ = ch.reserve(5);
    }

    #[test]
    fn loan_round_trip_in_place() {
        let ch = ChunkChannel::new(2, 16);
        for round in 0..5u64 {
            let mut s = ch.reserve(9);
            assert_eq!(s.capacity(), 16);
            assert_eq!(s.len(), 9);
            s.with_bytes_mut(|b| {
                for (i, x) in b.iter_mut().enumerate() {
                    *x = round as u8 ^ i as u8;
                }
            });
            s.publish(round);
            let r = ch.peek();
            assert_eq!(r.tag(), round);
            assert_eq!(r.len(), 9);
            assert!(!r.is_empty());
            r.with_bytes(|b| {
                assert_eq!(b.len(), 9);
                for (i, x) in b.iter().enumerate() {
                    assert_eq!(*x, round as u8 ^ i as u8);
                }
            });
            drop(r);
        }
        assert_eq!(ch.sent(), 5);
        assert_eq!(ch.received(), 5);
    }

    #[test]
    fn send_loan_is_clamped_to_declared_len() {
        // The producer loan must expose exactly the declared length — the
        // rest of the slot holds stale bytes from prior messages and
        // handing them out as writable scratch was the §IV loan bug this
        // test pins. (Fails on the unclamped SendSlot::with_bytes_mut,
        // which handed out the full chunk capacity.)
        let ch = ChunkChannel::new(2, 16);
        ch.send_with(0, 16, |d| d.fill(0x55));
        ch.recv_with(|_, _| ());
        let mut s = ch.reserve(3);
        s.with_bytes_mut(|b| {
            assert_eq!(b.len(), 3, "loan exposes declared len, not capacity");
            b.copy_from_slice(b"abc");
        });
        s.publish(1);
        ch.recv_with(|t, b| {
            assert_eq!(t, 1);
            assert_eq!(b, b"abc");
        });
    }

    #[test]
    fn abandoned_send_loan_releases_the_cycle() {
        let ch = ChunkChannel::new(2, 8);
        {
            let mut s = ch.reserve(8);
            s.with_bytes_mut(|b| b.fill(0xAA));
            // Dropped without publish: nothing reaches the consumer.
        }
        assert_eq!(ch.sent(), 0);
        assert_eq!(ch.peek_tag(), None);
        assert!(ch.try_peek().is_none());
        // The same ticket is re-loanable and works normally.
        ch.send_with(3, 2, |d| d.copy_from_slice(b"ok"));
        assert_eq!(ch.recv_with(|t, b| (t, b.to_vec())), (3, b"ok".to_vec()));
    }

    #[test]
    fn recv_loan_holds_the_window_until_drop() {
        let ch = ChunkChannel::new(2, 4);
        ch.send_with(1, 1, |d| d[0] = 1);
        ch.send_with(2, 1, |d| d[0] = 2);
        assert!(!ch.can_send());
        let r = ch.peek();
        assert_eq!(r.tag(), 1);
        // The loan is still live: the slot has not retired yet.
        assert!(!ch.can_send());
        assert_eq!(ch.received(), 0);
        drop(r);
        assert_eq!(ch.received(), 1);
        assert!(ch.can_send());
        assert_eq!(ch.recv_with(|t, b| (t, b[0])), (2, 2));
    }

    #[test]
    fn zero_len_loans_are_valid() {
        let ch = ChunkChannel::new(2, 4);
        let s = ch.reserve(0);
        assert!(s.is_empty());
        s.publish(9);
        let r = ch.peek();
        assert_eq!((r.tag(), r.len(), r.is_empty()), (9, 0, true));
        r.with_bytes(|b| assert!(b.is_empty()));
    }

    #[test]
    fn slot_bytes_are_not_rezeroed_between_loans() {
        // The protocol promises no per-loan initialization: within the
        // declared length, bytes a fill does not write survive from `cap`
        // tickets ago. Pin that down so a "helpful" pre-zero (a pure copy
        // bug) cannot sneak back in.
        let ch = ChunkChannel::new(2, 4);
        ch.send_with(0, 4, |d| d.copy_from_slice(b"wxyz"));
        ch.recv_with(|_, _| ());
        ch.send_with(0, 4, |d| d.copy_from_slice(b"competing"[..4].as_ref()));
        ch.recv_with(|_, _| ());
        // Ticket 2 reuses ticket 0's slot; declare the full width but only
        // write the first byte — the rest must still read "xyz".
        let mut s = ch.reserve(4);
        s.with_bytes_mut(|b| b[0] = b'!');
        s.publish(0);
        ch.recv_with(|_, b| assert_eq!(b, b"!xyz"));
    }

    #[test]
    fn tree_routing_covers_every_node_from_every_root() {
        // For each root, following bcast_in/bcast_out edges must form a
        // spanning tree: every non-root node's in-port is some other node's
        // out-port, and each node forwards on all remaining incident ports.
        for m in 1..=9usize {
            let f = Fabric::new(m, 64, 2);
            for root in 0..m {
                let mut in_ports: Vec<*const ChunkChannel> = Vec::new();
                let mut out_ports: Vec<*const ChunkChannel> = Vec::new();
                for v in 0..m {
                    if v != root {
                        in_ports.push(f.bcast_in(v, root) as *const _);
                    }
                    for ch in f.bcast_out(v, root) {
                        out_ports.push(ch as *const _);
                    }
                }
                assert_eq!(in_ports.len(), m - 1, "m={m} root={root}");
                assert_eq!(out_ports.len(), m - 1, "m={m} root={root}");
                let mut matched = 0;
                for p in &in_ports {
                    assert!(
                        out_ports.contains(p),
                        "unmatched in-port (m={m} root={root})"
                    );
                    matched += 1;
                }
                assert_eq!(matched, m - 1);
            }
        }
    }

    #[test]
    fn ring_geometry_is_consistent() {
        for m in 2..=5usize {
            let f = Fabric::new(m, 32, 2);
            for dir in [RingDir::Plus, RingDir::Minus] {
                for v in 0..m {
                    let pos = f.ring_pos(v, dir);
                    assert_eq!(f.ring_node(pos, dir), v);
                    // My send channel is my downstream neighbor's recv.
                    let succ = f.ring_node((pos + 1) % m, dir);
                    assert!(std::ptr::eq(f.ring_send(v, dir), f.ring_recv(succ, dir)));
                }
                // Positions are a permutation of 0..m.
                let mut seen: Vec<usize> = (0..m).map(|v| f.ring_pos(v, dir)).collect();
                seen.sort_unstable();
                assert_eq!(seen, (0..m).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn optag_round_trips() {
        for (op, kind, k) in [
            (0u64, optag::KIND_DATA, 0usize),
            (1, optag::KIND_PARTIAL, 7),
            (123_456_789, optag::KIND_FULL, (1 << 24) - 1),
        ] {
            let tag = optag::pack(op, kind, k);
            assert_eq!(optag::unpack(tag), (op, kind, k));
        }
        // Distinct ops never collide even at equal kind/seq.
        assert_ne!(optag::pack(5, 0, 3), optag::pack(6, 0, 3));
    }

    #[test]
    fn toward_picks_the_root_facing_port() {
        let f = Fabric::new(7, 16, 2);
        // Tree: 0-(1,2), 1-(3,4), 2-(5,6).
        assert_eq!(Fabric::<HeapSlots>::toward(0, 5), 2);
        assert_eq!(Fabric::<HeapSlots>::toward(1, 5), 0);
        assert_eq!(Fabric::<HeapSlots>::toward(3, 4), 1);
        assert_eq!(Fabric::<HeapSlots>::toward(5, 6), 2);
        assert_eq!(Fabric::<HeapSlots>::toward(2, 5), 5);
        assert_eq!(Fabric::<HeapSlots>::toward(6, 0), 2);
        let _ = f;
    }
}
