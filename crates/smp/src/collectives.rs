//! Real intra-node collectives over threads — the paper's §V mechanisms,
//! minus the (simulated) network.
//!
//! Three broadcast data paths, exactly the paper's intra-node options:
//!
//! * [`RankCtx::bcast_shmem`] — **staged shared memory**: the root copies
//!   through a fixed double-buffered shared segment; peers copy out. Two
//!   copies per byte; the baseline every prior-work scheme uses.
//! * [`RankCtx::bcast_fifo`] — the **Bcast FIFO** (§IV-B): the root
//!   packetizes into FIFO slots (payload + `{conn, len}` metadata); each
//!   peer drains every slot. Concurrent, multiplexable, but still staged.
//! * [`RankCtx::bcast_shaddr`] — **shared address + message counters**
//!   (§IV-C/§V-A): the root exposes its *application buffer* through the
//!   window registry and publishes a byte counter chunk by chunk; peers
//!   copy directly out of the root's buffer — one copy, pipelined.
//!
//! Plus [`RankCtx::allreduce_f64`] — the §V-C decomposition (local reduce by
//! partition, then local broadcast), here in its intra-node form: every rank
//! owns a partition, reduces it across all exposed input buffers, and all
//! ranks copy the assembled result.
//!
//! All operations are SPMD: every rank of the node must call them in the
//! same order with consistent arguments. Every operation ends with a node
//! barrier, so buffers may be reused immediately after return.

use std::sync::Arc;

use bgp_shmem::SharedRegion;

use crate::runtime::{RankCtx, FIFO_SLOT_BYTES, STAGING_HALF_BYTES};

/// One Bcast-FIFO slot: payload plus the metadata the paper stores alongside
/// it ("the number of data bytes copied into the slot and the connection id
/// of the global broadcast flow").
#[derive(Clone)]
pub struct FifoMsg {
    /// Connection id of the broadcast flow (the color / stream id).
    pub conn: u32,
    /// Valid bytes in `data`.
    pub len: u32,
    /// Slot payload. Shared (`Arc`) so handing the message to each consumer
    /// is a refcount bump rather than a 4 KB allocate-and-copy; the producer
    /// recycles payload buffers through its [`RankCtx`] pool once every
    /// consumer has dropped its clone.
    pub data: Arc<[u8; FIFO_SLOT_BYTES]>,
}

/// Write a slice of `f64`s into a region at byte `offset` — serialized
/// directly into the region bytes, no staging buffer.
pub fn write_f64s(region: &SharedRegion, offset: usize, vals: &[f64]) {
    // SAFETY: caller is the unique writer of this range (SPMD
    // partitioning), for the duration of the conversion.
    unsafe { region.with_bytes_mut(offset, vals.len() * 8, |b| f64s_to_bytes(vals, b)) };
}

/// Read `out.len()` `f64`s from a region at byte `offset` into `out` —
/// decoded straight off the region bytes, no staging buffer.
pub fn read_f64s_into(region: &SharedRegion, offset: usize, out: &mut [f64]) {
    // SAFETY: caller ordered this read after the producing writes.
    unsafe {
        region.with_bytes(offset, out.len() * 8, |bytes| {
            for (v, b) in out.iter_mut().zip(bytes.chunks_exact(8)) {
                *v = f64::from_ne_bytes(b.try_into().unwrap());
            }
        })
    };
}

/// Read `count` `f64`s from a region at byte `offset` (allocating wrapper
/// over [`read_f64s_into`]).
pub fn read_f64s(region: &SharedRegion, offset: usize, count: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; count];
    read_f64s_into(region, offset, &mut out);
    out
}

/// Add the `acc.len()` `f64`s at byte `offset` of `region` into `acc`,
/// element-wise — the vectorized kernel runs directly over the region
/// bytes, no staging buffer.
pub fn accumulate_f64s(region: &SharedRegion, offset: usize, acc: &mut [f64]) {
    // SAFETY: caller ordered this read after the producing writes.
    unsafe {
        region.with_bytes(offset, acc.len() * 8, |bytes| {
            crate::kernels::add_bytes_f64(acc, bytes)
        })
    };
}

/// Element-wise add `bytes` (native-endian `f64`s) into `acc` (the 4-lane
/// kernel from [`crate::kernels`]).
pub fn add_bytes_f64(acc: &mut [f64], bytes: &[u8]) {
    crate::kernels::add_bytes_f64(acc, bytes);
}

/// Serialize `vals` into `dst` (native-endian); `dst` must be exactly 8×
/// as long as `vals`.
pub fn f64s_to_bytes(vals: &[f64], dst: &mut [u8]) {
    assert_eq!(dst.len(), vals.len() * 8);
    for (v, d) in vals.iter().zip(dst.chunks_exact_mut(8)) {
        d.copy_from_slice(&v.to_ne_bytes());
    }
}

impl RankCtx {
    /// Staged shared-memory broadcast of `len` bytes from `root`'s `buf`
    /// into every other rank's `buf`.
    pub fn bcast_shmem(&mut self, root: usize, buf: &Arc<SharedRegion>, len: usize) {
        assert!(buf.len() >= len, "buffer shorter than message");
        let _op = self.next_op();
        let n_chunks = len.div_ceil(STAGING_HALF_BYTES);
        let me = self.rank();

        if me == root {
            for k in 0..n_chunks {
                let off = k * STAGING_HALF_BYTES;
                let clen = (len - off).min(STAGING_HALF_BYTES);
                let half = k % 2;
                if k >= 2 {
                    // Wait until every peer finished the previous use of
                    // this half, then rearm it.
                    self.stage_done(half).wait();
                    self.stage_done(half).reset();
                }
                // SAFETY: root is the only writer of buf/staging here;
                // peers read staging only after the counter publish below.
                // Region-to-region: exactly the two copies per byte the
                // staged scheme is charged for (buf→staging, staging→buf).
                unsafe {
                    self.staging()
                        .copy_from(half * STAGING_HALF_BYTES, buf, off, clen)
                };
                self.msg_counter(root).publish(clen as u64);
            }
            // Drain the last (up to two) outstanding half-uses and rearm.
            for k in n_chunks.saturating_sub(2)..n_chunks {
                self.stage_done(k % 2).wait();
                self.stage_done(k % 2).reset();
            }
            self.msg_counter(root).reset();
        } else {
            let mut seen = 0usize;
            for k in 0..n_chunks {
                let off = k * STAGING_HALF_BYTES;
                let clen = (len - off).min(STAGING_HALF_BYTES);
                let half = k % 2;
                self.msg_counter(root).wait_for((seen + clen) as u64);
                // SAFETY: the counter acquire ordered us after the root's
                // staging write; we write a disjoint range of our own buf.
                unsafe { buf.copy_from(off, self.staging(), half * STAGING_HALF_BYTES, clen) };
                self.stage_done(half).arrive();
                seen += clen;
            }
        }
        self.barrier();
    }

    /// Bcast-FIFO broadcast of `len` bytes from `root`'s `buf`.
    ///
    /// `conn` tags the flow (multiple colors can share the FIFO). The root
    /// is also a FIFO consumer (the runtime's FIFO has one consumer per
    /// rank), so it drains — and discards — its own messages as it
    /// produces, which keeps slot retirement uniform for any root.
    pub fn bcast_fifo(&mut self, root: usize, buf: &Arc<SharedRegion>, len: usize, conn: u32) {
        assert!(buf.len() >= len, "buffer shorter than message");
        let _op = self.next_op();
        let n_msgs = len.div_ceil(FIFO_SLOT_BYTES);
        let me = self.rank();

        if me == root {
            let mut drained = 0usize;
            for k in 0..n_msgs {
                // Drain our own consumer opportunistically so our lag never
                // blocks slot retirement.
                while self.consumer().try_recv().is_some() {
                    drained += 1;
                }
                let off = k * FIFO_SLOT_BYTES;
                let clen = (len - off).min(FIFO_SLOT_BYTES);
                // Recycle a payload buffer from the pool (a fresh one is
                // allocated — without zero-fill of live bytes — only while
                // consumers still hold clones of every pooled buffer).
                let mut data = self.take_fifo_buffer();
                let dst = Arc::get_mut(&mut data).expect("pooled buffer is uniquely owned");
                // SAFETY: root reads its own buffer.
                unsafe { buf.read(off, &mut dst[..clen]) };
                self.fifo().enqueue(FifoMsg {
                    conn,
                    len: clen as u32,
                    data: data.clone(),
                });
                self.return_fifo_buffer(data);
            }
            while drained < n_msgs {
                let _ = self.consumer().recv();
                drained += 1;
            }
        } else {
            let mut off = 0usize;
            for _ in 0..n_msgs {
                let msg = self.consumer().recv();
                debug_assert_eq!(msg.conn, conn, "flow multiplexing mismatch");
                let clen = msg.len as usize;
                // SAFETY: we are the only writer of our own buf range.
                unsafe { buf.write(off, &msg.data[..clen]) };
                off += clen;
            }
            debug_assert_eq!(off, len);
        }
        self.barrier();
    }

    /// Shared-address broadcast with software message counters: peers copy
    /// `len` bytes directly from `root`'s application buffer, chasing the
    /// root's counter in `pwidth`-byte pipeline chunks.
    pub fn bcast_shaddr(
        &mut self,
        root: usize,
        buf: &Arc<SharedRegion>,
        len: usize,
        pwidth: usize,
    ) {
        assert!(buf.len() >= len, "buffer shorter than message");
        assert!(pwidth > 0, "pipeline width must be positive");
        let op = self.next_op();
        let me = self.rank();

        if me == root {
            // Expose the application buffer (the process-window step).
            self.registry().expose(root as u32, op, buf.clone());
            // Publish availability chunk by chunk. In the integrated
            // (networked) algorithm each publish follows a network chunk
            // reception; intra-node the data is already present, so this
            // exercises the pipeline protocol itself.
            let mut published = 0usize;
            while published < len {
                let c = (len - published).min(pwidth);
                published += c;
                self.msg_counter(root).publish(c as u64);
            }
            if len == 0 {
                // Zero-byte broadcast: nothing to publish, peers skip copy.
            }
            self.done_counter(root).wait();
            self.done_counter(root).reset();
            self.msg_counter(root).reset();
            self.registry().unexpose(root as u32, op);
        } else {
            let mut seen_cache = std::mem::take(&mut self.mapped_before);
            let src = self
                .registry()
                .map_auto_blocking(root as u32, op, &mut seen_cache);
            self.mapped_before = seen_cache;
            let mut seen = 0usize;
            while seen < len {
                let avail = self.msg_counter(root).wait_for(seen as u64 + 1) as usize;
                let avail = avail.min(len);
                // SAFETY: counter acquire orders us after the root's writes
                // of [seen, avail); our own range is exclusively ours.
                unsafe { buf.copy_from(seen, &src, seen, avail - seen) };
                seen = avail;
            }
            self.done_counter(root).arrive();
        }
        self.barrier();
    }

    /// Intra-node allreduce (sum) over `count` doubles: the §V-C local
    /// decomposition. Every rank exposes `input`, owns one contiguous
    /// partition, reduces it across all ranks' inputs, publishes, and then
    /// assembles the full result into its own `output`.
    pub fn allreduce_f64(
        &mut self,
        input: &Arc<SharedRegion>,
        output: &Arc<SharedRegion>,
        count: usize,
    ) {
        assert!(input.len() >= count * 8, "input shorter than count");
        assert!(output.len() >= count * 8, "output shorter than count");
        let op = self.next_op();
        let me = self.rank();
        let n = self.n_ranks();

        // Tag space: input of rank r under tag 2*op, result under 2*op+1.
        let in_tag = 2 * op;
        let res_tag = 2 * op + 1;

        self.registry().expose(me as u32, in_tag, input.clone());
        if me == 0 {
            let result = self.alloc_buffer(count * 8);
            self.registry().expose(0, res_tag, result);
        }
        let mut seen_cache = std::mem::take(&mut self.mapped_before);
        let inputs: Vec<Arc<SharedRegion>> = (0..n)
            .map(|r| {
                self.registry()
                    .map_auto_blocking(r as u32, in_tag, &mut seen_cache)
            })
            .collect();
        let result = self
            .registry()
            .map_auto_blocking(0, res_tag, &mut seen_cache);
        self.mapped_before = seen_cache;

        // My partition: [lo, hi) in element index.
        let lo = me * count / n;
        let hi = (me + 1) * count / n;
        if hi > lo {
            // Reduce straight into the exposed result partition: seed it
            // with rank 0's input, then lane-add each remaining input over
            // it in place. No scratch vector, no f64↔byte round trips.
            // SAFETY: this rank is the unique writer of its partition of
            // `result`; all inputs were written before the collective and
            // are distinct regions from `result`.
            unsafe {
                result.with_bytes_mut(lo * 8, (hi - lo) * 8, |dst| {
                    inputs[0].with_bytes(lo * 8, dst.len(), |src| dst.copy_from_slice(src));
                    for inp in &inputs[1..] {
                        inp.with_bytes(lo * 8, dst.len(), |src| {
                            crate::kernels::add_bytes_assign(dst, src)
                        });
                    }
                })
            };
        }
        self.msg_counter(me).publish(((hi - lo) * 8).max(1) as u64);

        // Wait for every partition, then copy the full result out.
        for r in 0..n {
            let rlo = r * count / n;
            let rhi = (r + 1) * count / n;
            self.msg_counter(r)
                .wait_for(((rhi - rlo) * 8).max(1) as u64);
        }
        // SAFETY: all partition writers published before our acquires above.
        unsafe { output.copy_from(0, &result, 0, count * 8) };

        if me == 0 {
            self.done_counter(0).wait();
            for r in 0..n {
                self.msg_counter(r).reset();
            }
            self.done_counter(0).reset();
            self.registry().unexpose(0, res_tag);
        } else {
            self.done_counter(0).arrive();
        }
        self.registry().unexpose(me as u32, in_tag);
        self.barrier();
    }
}

impl RankCtx {
    /// Intra-node gather: every rank's `len`-byte block lands in `root`'s
    /// `recv` buffer at offset `rank * len` — through the shared address
    /// space (each rank writes its own slice of the exposed buffer
    /// directly; the paper's §VII extension applied intra-node).
    pub fn gather(
        &mut self,
        root: usize,
        send: &Arc<SharedRegion>,
        recv: &Arc<SharedRegion>,
        len: usize,
    ) {
        let n = self.n_ranks();
        assert!(send.len() >= len, "send buffer shorter than block");
        let op = self.next_op();
        let me = self.rank();
        if me == root {
            assert!(recv.len() >= n * len, "recv buffer shorter than n blocks");
            self.registry().expose(root as u32, op, recv.clone());
            // Root contributes its own block locally.
            // SAFETY: each rank writes a disjoint slice of the exposed
            // buffer; the completion counter orders the root's reads.
            unsafe { recv.copy_from(me * len, send, 0, len) };
            self.done_counter(root).wait();
            self.done_counter(root).reset();
            self.registry().unexpose(root as u32, op);
        } else {
            let mut seen = std::mem::take(&mut self.mapped_before);
            let dst = self
                .registry()
                .map_auto_blocking(root as u32, op, &mut seen);
            self.mapped_before = seen;
            // SAFETY: disjoint slice per rank.
            unsafe { dst.copy_from(me * len, send, 0, len) };
            self.done_counter(root).arrive();
        }
        self.barrier();
    }

    /// Intra-node allgather: every rank ends with all `n` blocks in its
    /// `recv` buffer (block `r` at offset `r * len`). Gather into rank 0's
    /// exposed buffer, then every rank copies the assembled result — the
    /// shared-address single-copy pattern in both directions.
    pub fn allgather(&mut self, send: &Arc<SharedRegion>, recv: &Arc<SharedRegion>, len: usize) {
        let n = self.n_ranks();
        assert!(send.len() >= len, "send buffer shorter than block");
        assert!(recv.len() >= n * len, "recv buffer shorter than n blocks");
        let op = self.next_op();
        let me = self.rank();
        // Every rank exposes its send block; every rank assembles from all.
        self.registry().expose(me as u32, 2 * op, send.clone());
        self.msg_counter(me).publish(len.max(1) as u64);
        let mut seen = std::mem::take(&mut self.mapped_before);
        for r in 0..n {
            let src = self
                .registry()
                .map_auto_blocking(r as u32, 2 * op, &mut seen);
            self.msg_counter(r).wait_for(len.max(1) as u64);
            // SAFETY: counter acquire orders us after r's block write (done
            // before the collective per contract); our recv slice is ours.
            unsafe { recv.copy_from(r * len, &src, 0, len) };
        }
        self.mapped_before = seen;
        // Rearm the counters: last arriver resets via rank 0.
        if me == 0 {
            self.done_counter(0).wait();
            for r in 0..n {
                self.msg_counter(r).reset();
            }
            self.done_counter(0).reset();
        } else {
            self.done_counter(0).arrive();
        }
        // Unexpose only after the barrier: a rank that finishes early must
        // not retract its buffer while a slower peer is still inside
        // `map_auto_blocking` for it (each rank publishes its counter
        // *before* its own mapping loop, so completion-counter arrival does
        // not imply everyone has mapped everyone).
        self.barrier();
        self.registry().unexpose(me as u32, 2 * op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_node;
    use bgp_shmem::testing::stress_iters;

    fn pattern(len: usize, salt: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8) ^ salt).collect()
    }

    fn check_bcast(
        n_ranks: usize,
        root: usize,
        len: usize,
        run: impl Fn(&mut RankCtx, usize, &Arc<SharedRegion>, usize) + Sync,
    ) {
        let results = run_node(n_ranks, |ctx| {
            let buf = ctx.alloc_buffer(len.max(1));
            if ctx.rank() == root {
                unsafe { buf.write(0, &pattern(len, 0x5a)) };
            }
            ctx.barrier();
            run(ctx, root, &buf, len);
            unsafe { buf.snapshot() }
        });
        for (rank, got) in results.iter().enumerate() {
            assert_eq!(
                &got[..len],
                &pattern(len, 0x5a)[..],
                "rank {rank} payload mismatch (n={n_ranks}, root={root}, len={len})"
            );
        }
    }

    #[test]
    fn shmem_bcast_various_sizes() {
        for len in [
            0usize,
            1,
            100,
            STAGING_HALF_BYTES,
            STAGING_HALF_BYTES + 1,
            stress_iters(500_000),
        ] {
            check_bcast(4, 0, len, |ctx, root, buf, len| {
                ctx.bcast_shmem(root, buf, len)
            });
        }
    }

    #[test]
    fn shmem_bcast_nonzero_root() {
        check_bcast(4, 2, stress_iters(200_000), |ctx, root, buf, len| {
            ctx.bcast_shmem(root, buf, len)
        });
    }

    #[test]
    fn fifo_bcast_various_sizes() {
        for len in [
            0usize,
            1,
            FIFO_SLOT_BYTES - 1,
            FIFO_SLOT_BYTES,
            3 * FIFO_SLOT_BYTES + 17,
            stress_iters(400_000),
        ] {
            check_bcast(4, 0, len, |ctx, root, buf, len| {
                ctx.bcast_fifo(root, buf, len, 0)
            });
        }
    }

    #[test]
    fn fifo_bcast_rotating_roots_back_to_back() {
        // Exercises slot retirement when the producer role moves around.
        let len = 10 * FIFO_SLOT_BYTES;
        let results = run_node(4, |ctx| {
            let buf = ctx.alloc_buffer(len);
            let mut sums = Vec::new();
            for root in 0..4usize {
                if ctx.rank() == root {
                    unsafe { buf.write(0, &pattern(len, root as u8)) };
                }
                ctx.barrier();
                ctx.bcast_fifo(root, &buf, len, root as u32);
                let snap = unsafe { buf.snapshot() };
                sums.push(snap.iter().map(|&b| b as u64).sum::<u64>());
            }
            sums
        });
        for r in 1..4 {
            assert_eq!(results[r], results[0]);
        }
    }

    #[test]
    fn shaddr_bcast_various_sizes_and_pwidths() {
        for (len, pw) in [
            (0usize, 4096usize),
            (1, 4096),
            (65_536, 1024),
            (65_536, 65_536),
            (stress_iters(300_000) + 1, 16 * 1024),
        ] {
            check_bcast(4, 0, len, move |ctx, root, buf, len| {
                ctx.bcast_shaddr(root, buf, len, pw)
            });
        }
    }

    #[test]
    fn shaddr_bcast_two_ranks() {
        check_bcast(2, 1, stress_iters(100_000), |ctx, root, buf, len| {
            ctx.bcast_shaddr(root, buf, len, 8192)
        });
    }

    #[test]
    fn shaddr_repeated_ops_reuse_window_cache() {
        let len = 64 * 1024;
        let results = run_node(4, |ctx| {
            let buf = ctx.alloc_buffer(len);
            if ctx.rank() == 0 {
                unsafe { buf.write(0, &pattern(len, 1)) };
            }
            ctx.barrier();
            for _ in 0..5 {
                ctx.bcast_shaddr(0, &buf, len, 16 * 1024);
            }
            ctx.barrier();
            let (_, misses, hits) = ctx.registry().stats().snapshot();
            (misses, hits)
        });
        // Same root buffer each time: 3 peers miss once, hit 4 times each.
        let (misses, hits) = results[0];
        assert_eq!(misses, 3, "each peer should map the root buffer once");
        assert_eq!(hits, 12, "subsequent ops should hit the window cache");
    }

    #[test]
    fn allreduce_matches_sequential_sum() {
        for count in [0usize, 1, 7, 1024, stress_iters(10_000)] {
            let results = run_node(4, move |ctx| {
                let me = ctx.rank();
                let input = ctx.alloc_buffer((count * 8).max(1));
                let output = ctx.alloc_buffer((count * 8).max(1));
                let vals: Vec<f64> = (0..count)
                    .map(|i| (i as f64) + (me as f64) * 0.25)
                    .collect();
                write_f64s(&input, 0, &vals);
                ctx.barrier();
                ctx.allreduce_f64(&input, &output, count);
                read_f64s(&output, 0, count)
            });
            let expect: Vec<f64> = (0..count)
                .map(|i| (0..4).map(|r| (i as f64) + (r as f64) * 0.25).sum())
                .collect();
            for (rank, got) in results.iter().enumerate() {
                assert_eq!(got.len(), count);
                for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
                    assert!(
                        (g - e).abs() < 1e-9,
                        "rank {rank} element {i}: got {g}, expect {e} (count={count})"
                    );
                }
            }
        }
    }

    #[test]
    fn allreduce_repeats_are_stable() {
        let count = 4096;
        let results = run_node(4, move |ctx| {
            let me = ctx.rank();
            let input = ctx.alloc_buffer(count * 8);
            let output = ctx.alloc_buffer(count * 8);
            write_f64s(&input, 0, &vec![me as f64 + 1.0; count]);
            ctx.barrier();
            let mut checks = Vec::new();
            for _ in 0..10 {
                ctx.allreduce_f64(&input, &output, count);
                let out = read_f64s(&output, 0, count);
                checks.push(out.iter().all(|&v| (v - 10.0).abs() < 1e-12));
            }
            checks
        });
        for rank_checks in results {
            assert!(rank_checks.into_iter().all(|ok| ok));
        }
    }

    #[test]
    fn gather_assembles_blocks_in_rank_order() {
        for (n, root, len) in [
            (4usize, 0usize, 1000usize),
            (4, 3, 8192),
            (2, 1, 1),
            (3, 0, 0),
        ] {
            let results = run_node(n, move |ctx| {
                let me = ctx.rank();
                let send = ctx.alloc_buffer(len.max(1));
                let recv = ctx.alloc_buffer((n * len).max(1));
                unsafe { send.write(0, &vec![me as u8 + 1; len]) };
                ctx.barrier();
                ctx.gather(root, &send, &recv, len);
                unsafe { recv.snapshot() }
            });
            let got = &results[root];
            for r in 0..n {
                for i in 0..len {
                    assert_eq!(
                        got[r * len + i],
                        r as u8 + 1,
                        "n={n} root={root} block {r} byte {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let len = 5000usize;
        let results = run_node(4, move |ctx| {
            let me = ctx.rank();
            let send = ctx.alloc_buffer(len);
            let recv = ctx.alloc_buffer(4 * len);
            unsafe { send.write(0, &vec![(me as u8) ^ 0x3C; len]) };
            ctx.barrier();
            ctx.allgather(&send, &recv, len);
            unsafe { recv.snapshot() }
        });
        for (rank, got) in results.iter().enumerate() {
            for r in 0..4usize {
                assert!(
                    got[r * len..(r + 1) * len]
                        .iter()
                        .all(|&b| b == (r as u8) ^ 0x3C),
                    "rank {rank} block {r}"
                );
            }
        }
    }

    #[test]
    fn allgather_repeats_rearm_cleanly() {
        let len = 2048usize;
        let results = run_node(4, move |ctx| {
            let me = ctx.rank();
            let send = ctx.alloc_buffer(len);
            let recv = ctx.alloc_buffer(4 * len);
            unsafe { send.write(0, &vec![me as u8; len]) };
            ctx.barrier();
            let mut ok = true;
            for _ in 0..5 {
                ctx.allgather(&send, &recv, len);
                let snap = unsafe { recv.snapshot() };
                ok &= (0..4).all(|r| snap[r * len..(r + 1) * len].iter().all(|&b| b == r as u8));
            }
            ok
        });
        assert!(results.into_iter().all(|ok| ok));
    }

    #[test]
    fn mixed_collectives_in_sequence() {
        // Interleave all three broadcast paths and the allreduce in one
        // program, ensuring shared structures rearm correctly between ops.
        let len = stress_iters(150_000);
        let results = run_node(4, move |ctx| {
            let buf = ctx.alloc_buffer(len);
            if ctx.rank() == 3 {
                unsafe { buf.write(0, &pattern(len, 9)) };
            }
            ctx.barrier();
            ctx.bcast_shmem(3, &buf, len);
            ctx.bcast_fifo(3, &buf, len, 1);
            ctx.bcast_shaddr(3, &buf, len, 32 * 1024);
            let input = ctx.alloc_buffer(1024 * 8);
            let output = ctx.alloc_buffer(1024 * 8);
            write_f64s(&input, 0, &vec![1.0; 1024]);
            ctx.barrier();
            ctx.allreduce_f64(&input, &output, 1024);
            let b = unsafe { buf.snapshot() };
            let s = read_f64s(&output, 0, 1024);
            (b, s)
        });
        for (b, s) in results {
            assert_eq!(b, pattern(len, 9));
            assert!(s.iter().all(|&v| (v - 4.0).abs() < 1e-12));
        }
    }

    #[test]
    fn f64_helpers_round_trip() {
        let region = SharedRegion::new(4096 * 8 + 16);
        let vals: Vec<f64> = (0..300).map(|i| i as f64 * 0.5 - 7.0).collect();
        write_f64s(&region, 16, &vals);
        assert_eq!(read_f64s(&region, 16, 300), vals);
        let mut acc = vec![1.0f64; 300];
        accumulate_f64s(&region, 16, &mut acc);
        for (i, a) in acc.iter().enumerate() {
            assert_eq!(*a, 1.0 + vals[i]);
        }
        let mut bytes = vec![0u8; 300 * 8];
        f64s_to_bytes(&vals, &mut bytes);
        let mut sum = vec![0.0f64; 300];
        add_bytes_f64(&mut sum, &bytes);
        assert_eq!(sum, vals);
    }

    #[test]
    fn all_bcast_paths_degenerate_shapes() {
        // root ∈ {1, n−1}, length edge cases around the staging half, and
        // the single-rank node, for every broadcast path.
        for n in [1usize, 2, 4] {
            for root in [1usize.min(n - 1), n - 1] {
                for len in [0usize, 1, STAGING_HALF_BYTES - 1, STAGING_HALF_BYTES + 1] {
                    check_bcast(n, root, len, |ctx, root, buf, len| {
                        ctx.bcast_shmem(root, buf, len)
                    });
                    check_bcast(n, root, len, |ctx, root, buf, len| {
                        ctx.bcast_fifo(root, buf, len, 5)
                    });
                    check_bcast(n, root, len, |ctx, root, buf, len| {
                        ctx.bcast_shaddr(root, buf, len, 4096)
                    });
                }
            }
        }
    }

    #[test]
    fn allreduce_degenerate_shapes() {
        // n = 1 (self-reduce) and odd rank counts; counts that do not split
        // evenly across ranks, including zero and one element.
        for n in [1usize, 2, 3] {
            for count in [0usize, 1, 1023] {
                let results = run_node(n, move |ctx| {
                    let me = ctx.rank();
                    let input = ctx.alloc_buffer((count * 8).max(1));
                    let output = ctx.alloc_buffer((count * 8).max(1));
                    let vals: Vec<f64> = (0..count).map(|i| (i + me) as f64).collect();
                    write_f64s(&input, 0, &vals);
                    ctx.barrier();
                    ctx.allreduce_f64(&input, &output, count);
                    read_f64s(&output, 0, count)
                });
                for (rank, got) in results.iter().enumerate() {
                    for (i, &g) in got.iter().enumerate() {
                        let e: f64 = (0..n).map(|r| (i + r) as f64).sum();
                        assert_eq!(g, e, "n={n} rank={rank} count={count} elem {i}");
                    }
                }
            }
        }
    }
}
