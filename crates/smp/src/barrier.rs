//! A sense-reversing centralized barrier.
//!
//! The classic HPC barrier: one shared arrival counter plus a "sense" flag
//! that flips each episode; each thread keeps a thread-local sense. This is
//! what an MPI runtime uses for intra-node barriers (BG/P additionally has
//! the global interrupt network for the inter-node part, which the simulator
//! charges separately). `std::sync::Barrier` would also work but parks
//! threads; collectives want the spin behaviour of the real thing.

use bgp_shmem::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use bgp_shmem::CachePadded;

use bgp_shmem::model_support;

/// A reusable spinning barrier for a fixed set of `n` participants.
///
/// Each participant must pass its own [`BarrierToken`], created once per
/// thread via [`SenseBarrier::token`], carrying the thread-local sense.
pub struct SenseBarrier {
    n: usize,
    arrived: CachePadded<AtomicUsize>,
    sense: CachePadded<AtomicBool>,
}

/// Thread-local barrier state (the private sense bit).
#[derive(Debug)]
pub struct BarrierToken {
    local_sense: bool,
}

impl SenseBarrier {
    /// A barrier for `n` participants (n ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        SenseBarrier {
            n,
            arrived: CachePadded::new(AtomicUsize::new(0)),
            sense: CachePadded::new(AtomicBool::new(false)),
        }
    }

    /// Participant count.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Create a token for one participating thread.
    pub fn token(&self) -> BarrierToken {
        BarrierToken { local_sense: false }
    }

    /// Wait until all `n` participants have arrived. Returns `true` on the
    /// last arriver (the one that released the episode).
    pub fn wait(&self, token: &mut BarrierToken) -> bool {
        let my_sense = !token.local_sense;
        token.local_sense = my_sense;
        // AcqRel: arriving publishes everything the thread did before the
        // barrier; the release below publishes the episode flip.
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.arrived.store(0, Ordering::Relaxed);
            // Seeded bug for the model checker: a relaxed episode flip no
            // longer publishes the pre-barrier writes of earlier arrivers
            // to the waiters it releases.
            self.sense.store(
                my_sense,
                model_support::relaxed_if("barrier_release_relaxed", Ordering::Release),
            );
            true
        } else {
            while self.sense.load(Ordering::Acquire) != my_sense {
                bgp_shmem::spin();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn single_participant_never_blocks() {
        let b = SenseBarrier::new(1);
        let mut t = b.token();
        for _ in 0..10 {
            assert!(b.wait(&mut t));
        }
    }

    #[test]
    fn separates_phases() {
        // Each thread increments a phase counter between barriers; at every
        // barrier all threads must have seen the same number of phases.
        const THREADS: usize = 4;
        const PHASES: usize = 200;
        let barrier = Arc::new(SenseBarrier::new(THREADS));
        let phase_sum = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = barrier.clone();
                let phase_sum = phase_sum.clone();
                thread::spawn(move || {
                    let mut token = barrier.token();
                    for p in 0..PHASES {
                        phase_sum.fetch_add(1, Ordering::Relaxed);
                        barrier.wait(&mut token);
                        // Inside the episode boundary, the sum must be an
                        // exact multiple: everyone finished phase p.
                        let s = phase_sum.load(Ordering::Relaxed);
                        assert!(
                            s >= ((p + 1) * THREADS) as u64,
                            "barrier leaked a thread into phase {p}"
                        );
                        barrier.wait(&mut token);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(phase_sum.load(Ordering::Relaxed), (THREADS * PHASES) as u64);
    }

    #[test]
    fn exactly_one_releaser_per_episode() {
        const THREADS: usize = 8;
        const EPISODES: usize = 100;
        let barrier = Arc::new(SenseBarrier::new(THREADS));
        let releasers = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = barrier.clone();
                let releasers = releasers.clone();
                thread::spawn(move || {
                    let mut token = barrier.token();
                    for _ in 0..EPISODES {
                        if barrier.wait(&mut token) {
                            releasers.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(releasers.load(Ordering::Relaxed), EPISODES as u64);
    }

    #[test]
    #[should_panic]
    fn zero_participants_rejected() {
        let _ = SenseBarrier::new(0);
    }
}
