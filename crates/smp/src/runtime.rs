//! The node runtime: one thread per MPI rank of one node.
//!
//! [`run_node`] spawns `n` rank-threads over a shared [`NodeShared`] state —
//! the barrier, the window registry, the per-rank message/completion
//! counters, one node-wide Bcast FIFO — and hands each thread a [`RankCtx`].
//! The intra-node collectives in [`crate::collectives`] are methods on
//! `RankCtx`, called SPMD-style by all ranks like MPI collectives.

use std::collections::HashSet;
use std::sync::Arc;

use bgp_shmem::sync::Mutex;

use bgp_shmem::{
    BcastConsumer, BcastFifo, CompletionCounter, MessageCounter, SharedRegion, WindowRegistry,
};

use crate::barrier::{BarrierToken, SenseBarrier};
use crate::collectives::FifoMsg;

/// Bcast FIFO geometry used by the runtime (paper-plausible defaults:
/// 4 KB slots, 64 of them).
pub const FIFO_SLOT_BYTES: usize = 4096;
/// Number of slots in the node-wide Bcast FIFO.
pub const FIFO_SLOTS: usize = 64;
/// Staging segment for the staged shared-memory broadcast: two halves of
/// 64 KB (double buffering).
pub const STAGING_HALF_BYTES: usize = 64 * 1024;

/// State shared by all ranks of the node.
pub struct NodeShared {
    n: usize,
    barrier: SenseBarrier,
    registry: WindowRegistry,
    /// Per-rank message counter: counter `r` is published by rank `r` when
    /// it acts as a producer (master / partition owner).
    msg_counters: Vec<MessageCounter>,
    /// Per-rank completion counter, expecting `n-1` arrivals.
    done_counters: Vec<CompletionCounter>,
    /// Ping-pong completion counters for the staged shmem broadcast.
    stage_done: [CompletionCounter; 2],
    /// The staged shared-memory segment (two halves).
    staging: Arc<SharedRegion>,
    /// The node-wide Bcast FIFO (all ranks are consumers; producers drain
    /// their own consumer — see `collectives::bcast_fifo`).
    fifo: Arc<BcastFifo<FifoMsg>>,
    /// Each rank claims its consumer handle at startup.
    consumer_slots: Vec<Mutex<Option<BcastConsumer<FifoMsg>>>>,
}

impl NodeShared {
    fn new(n: usize) -> Arc<Self> {
        assert!(n >= 1, "a node has at least one rank");
        let (fifo, consumers) = BcastFifo::with_consumers(FIFO_SLOTS, n);
        let consumer_slots = consumers.into_iter().map(|c| Mutex::new(Some(c))).collect();
        Arc::new(NodeShared {
            n,
            barrier: SenseBarrier::new(n),
            registry: WindowRegistry::new(),
            msg_counters: (0..n).map(|_| MessageCounter::new()).collect(),
            done_counters: (0..n)
                .map(|_| CompletionCounter::new(n as u64 - 1))
                .collect(),
            stage_done: [
                CompletionCounter::new(n as u64 - 1),
                CompletionCounter::new(n as u64 - 1),
            ],
            staging: Arc::new(SharedRegion::new(2 * STAGING_HALF_BYTES)),
            fifo,
            consumer_slots,
        })
    }
}

/// One rank's view of the node. Created by [`run_node`]; the collectives of
/// [`crate::collectives`] are implemented as methods on this.
pub struct RankCtx {
    rank: usize,
    shared: Arc<NodeShared>,
    token: BarrierToken,
    consumer: BcastConsumer<FifoMsg>,
    /// Collective-call sequence number; identical across ranks because
    /// collectives are called SPMD in the same order. Used as window tags.
    pub(crate) op_seq: u64,
    /// Region pointers this rank has mapped before (its window cache, the
    /// subject of Figure 8).
    pub(crate) mapped_before: HashSet<usize>,
}

impl RankCtx {
    /// This rank's id in `0..n_ranks`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Ranks on the node.
    #[inline]
    pub fn n_ranks(&self) -> usize {
        self.shared.n
    }

    /// Intra-node barrier. Returns `true` on the releasing rank.
    pub fn barrier(&mut self) -> bool {
        self.shared.barrier.wait(&mut self.token)
    }

    /// Allocate an "application buffer" shareable with peers.
    pub fn alloc_buffer(&self, len: usize) -> Arc<SharedRegion> {
        Arc::new(SharedRegion::new(len))
    }

    /// The node's window registry (the CNK stand-in).
    pub fn registry(&self) -> &WindowRegistry {
        &self.shared.registry
    }

    /// Message counter published by `rank`.
    pub(crate) fn msg_counter(&self, rank: usize) -> &MessageCounter {
        &self.shared.msg_counters[rank]
    }

    /// Completion counter owned by `rank`.
    pub(crate) fn done_counter(&self, rank: usize) -> &CompletionCounter {
        &self.shared.done_counters[rank]
    }

    /// Staged-broadcast shared segment.
    pub(crate) fn staging(&self) -> &Arc<SharedRegion> {
        &self.shared.staging
    }

    /// Ping-pong stage counters.
    pub(crate) fn stage_done(&self, half: usize) -> &CompletionCounter {
        &self.shared.stage_done[half]
    }

    /// The node Bcast FIFO.
    pub(crate) fn fifo(&self) -> &Arc<BcastFifo<FifoMsg>> {
        &self.shared.fifo
    }

    /// This rank's FIFO consumer.
    pub(crate) fn consumer(&mut self) -> &mut BcastConsumer<FifoMsg> {
        &mut self.consumer
    }

    /// Advance and return the collective sequence number.
    pub(crate) fn next_op(&mut self) -> u64 {
        self.op_seq += 1;
        self.op_seq
    }
}

/// Run `n_ranks` rank-threads, each executing `body(ctx)` SPMD-style.
/// Returns each rank's result, indexed by rank.
///
/// ```
/// let sums = bgp_smp::run_node(4, |mut ctx| {
///     let me = ctx.rank();
///     ctx.barrier();
///     me * 10
/// });
/// assert_eq!(sums, vec![0, 10, 20, 30]);
/// ```
pub fn run_node<R, F>(n_ranks: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(RankCtx) -> R + Sync,
{
    let shared = NodeShared::new(n_ranks);
    let body = &body;
    let mut results: Vec<Option<R>> = (0..n_ranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_ranks)
            .map(|rank| {
                let shared = shared.clone();
                scope.spawn(move || {
                    let consumer = shared.consumer_slots[rank]
                        .lock()
                        .take()
                        .expect("consumer already claimed");
                    let token = shared.barrier.token();
                    let ctx = RankCtx {
                        rank,
                        shared,
                        token,
                        consumer,
                        op_seq: 0,
                        mapped_before: HashSet::new(),
                    };
                    body(ctx)
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().expect("rank thread panicked"));
        }
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_distinct_and_complete() {
        let out = run_node(4, |ctx| ctx.rank());
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn barrier_is_usable_from_ctx() {
        let out = run_node(3, |mut ctx| {
            let mut releases = 0;
            for _ in 0..10 {
                if ctx.barrier() {
                    releases += 1;
                }
            }
            releases
        });
        assert_eq!(out.iter().sum::<i32>(), 10);
    }

    #[test]
    fn single_rank_node() {
        let out = run_node(1, |mut ctx| {
            ctx.barrier();
            ctx.n_ranks()
        });
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn registry_is_node_wide() {
        let out = run_node(2, |mut ctx| {
            if ctx.rank() == 0 {
                let buf = ctx.alloc_buffer(16);
                unsafe { buf.write(0, &[42; 16]) };
                ctx.registry().expose(0, 999, buf);
            }
            ctx.barrier();
            let mapped = ctx.registry().map_blocking(0, 999, false);
            let mut b = [0u8; 1];
            unsafe { mapped.read(3, &mut b) };
            ctx.barrier();
            b[0]
        });
        assert_eq!(out, vec![42, 42]);
    }
}
