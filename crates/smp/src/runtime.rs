//! The node runtime: one persistent thread per MPI rank of one node.
//!
//! [`run_node`] executes a body SPMD-style on `n` rank-threads over a shared
//! [`NodeShared`] state — the barrier, the window registry, the per-rank
//! message/completion counters, one node-wide Bcast FIFO — handing each
//! thread a [`RankCtx`]. The intra-node collectives in
//! [`crate::collectives`] are methods on `RankCtx`, called SPMD-style by all
//! ranks like MPI collectives.
//!
//! Since the cluster runtime landed, `run_node` is a convenience shim over
//! [`NodeRuntime`] (itself a single-node [`crate::cluster::Cluster`]): the
//! rank threads are *persistent* — parked on a job queue between operations
//! — so callers that issue many operations should hold a `NodeRuntime` (or
//! `Cluster`) and pay thread spawn + `NodeShared` construction once, not
//! per call. `run_node` builds and drops a one-shot runtime, preserving the
//! old semantics for tests and examples.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use bgp_shmem::sync::atomic::AtomicU64;
use bgp_shmem::sync::Mutex;

use bgp_shmem::{
    BcastConsumer, BcastFifo, CompletionCounter, CounterBank, MessageCounter, SharedRegion,
    WindowRegistry,
};

use crate::barrier::{BarrierToken, SenseBarrier};
use crate::cluster::Cluster;
use crate::collectives::FifoMsg;

/// Per-op chunk cap of the [`SchedStash`]. One op can never park more than
/// a link window or two of chunks under SPMD posting discipline; far beyond
/// that means its chunks are garbage (a bogus op id) or the peers violated
/// the protocol, and retention would leak forever.
pub const STASH_PER_OP_CAP: usize = 64;
/// Total parked-chunk cap of the [`SchedStash`] across all ops.
pub const STASH_TOTAL_CAP: usize = 256;
/// How many evicted op ids the stash remembers (so a flooding op cannot
/// immediately regrow a queue it just had evicted).
const STASH_BANNED_CAP: usize = 64;

/// Why [`SchedStash::park`] refused a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StashEviction {
    /// The op's queue hit [`STASH_PER_OP_CAP`]; the whole queue was evicted
    /// and the op banned from re-parking.
    PerOpCap {
        /// The offending op id.
        op: u64,
        /// The cap it hit.
        cap: usize,
    },
    /// The stash hit [`STASH_TOTAL_CAP`] and evicting other queues could
    /// not make room (the incoming op itself was the largest hoarder).
    TotalCap {
        /// The cap it hit.
        cap: usize,
    },
    /// The op was evicted earlier and is still banned; the chunk is
    /// dropped without re-growing a queue.
    Banned {
        /// The banned op id.
        op: u64,
    },
}

impl std::fmt::Display for StashEviction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StashEviction::PerOpCap { op, cap } => {
                write!(f, "op {op} exceeded the per-op stash cap of {cap} chunks")
            }
            StashEviction::TotalCap { cap } => {
                write!(f, "stash exceeded its total cap of {cap} chunks")
            }
            StashEviction::Banned { op } => write!(f, "op {op} was evicted and is banned"),
        }
    }
}

impl std::error::Error for StashEviction {}

/// Cumulative [`SchedStash`] accounting (never reset).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StashStats {
    /// Chunks successfully parked over the stash's lifetime.
    pub parked: u64,
    /// Chunks dropped by eviction (incoming rejects plus evicted queue
    /// contents).
    pub evicted_chunks: u64,
    /// Distinct queue evictions (per-op cap or total-cap victim).
    pub evicted_ops: u64,
}

/// Parked nonblocking-scheduler chunks, keyed by op id: `(link tag,
/// payload)` pairs in arrival order — **bounded**.
///
/// Chunks land here when they arrive for an op this node has not posted
/// yet. Under SPMD posting discipline peers run at most a few ops ahead, so
/// legitimate queues stay tiny; a queue that grows without bound means the
/// op id is garbage (it will never be posted) and unbounded retention is a
/// leak. The stash therefore enforces [`STASH_PER_OP_CAP`] per op and
/// [`STASH_TOTAL_CAP`] overall: a queue that trips either cap is evicted
/// *whole* (partial queues are useless — replay asserts in-order chunk
/// sequences) and its op id is banned from re-parking, so a sustained flood
/// costs O(1) memory. Evictions are counted in [`StashStats`] and surfaced
/// through `ClusterStats`/`ServerStats`; an op whose chunks were evicted
/// can no longer complete on this node — eviction is overload *containment*
/// for protocol violations, not a normal mode.
/// Parked chunks for one op, in arrival order: `(tag, bytes)`.
type OpQueue = VecDeque<(u64, Box<[u8]>)>;

#[derive(Default)]
pub struct SchedStash {
    queues: HashMap<u64, OpQueue>,
    total: usize,
    banned: HashSet<u64>,
    banned_order: VecDeque<u64>,
    stats: StashStats,
}

impl SchedStash {
    /// Park one chunk for `op`, copying `bytes`. On eviction the chunk is
    /// dropped (and possibly the op's whole queue with it) and the typed
    /// reason returned.
    pub fn park(&mut self, op: u64, tag: u64, bytes: &[u8]) -> Result<(), StashEviction> {
        if self.banned.contains(&op) {
            self.stats.evicted_chunks += 1;
            return Err(StashEviction::Banned { op });
        }
        if self.queues.get(&op).map_or(0, |q| q.len()) >= STASH_PER_OP_CAP {
            self.evict(op);
            self.stats.evicted_chunks += 1; // the incoming chunk itself
            return Err(StashEviction::PerOpCap {
                op,
                cap: STASH_PER_OP_CAP,
            });
        }
        while self.total >= STASH_TOTAL_CAP {
            let victim = self
                .queues
                .iter()
                .max_by_key(|(_, q)| q.len())
                .map(|(&o, _)| o)
                .expect("total > 0 implies a non-empty queue");
            self.evict(victim);
            if victim == op {
                self.stats.evicted_chunks += 1;
                return Err(StashEviction::TotalCap {
                    cap: STASH_TOTAL_CAP,
                });
            }
        }
        self.queues
            .entry(op)
            .or_default()
            .push_back((tag, bytes.to_vec().into_boxed_slice()));
        self.total += 1;
        self.stats.parked += 1;
        Ok(())
    }

    /// The link tag at the head of `op`'s queue, if any.
    pub fn front_tag(&self, op: u64) -> Option<u64> {
        self.queues.get(&op).and_then(|q| q.front()).map(|e| e.0)
    }

    /// Pop the head of `op`'s queue (removing the queue when it empties).
    pub fn pop_front(&mut self, op: u64) -> Option<(u64, Box<[u8]>)> {
        let q = self.queues.get_mut(&op)?;
        let e = q.pop_front()?;
        self.total -= 1;
        if q.is_empty() {
            self.queues.remove(&op);
        }
        Some(e)
    }

    /// Op ids with parked chunks, in no particular order.
    pub fn parked_ops(&self) -> impl Iterator<Item = u64> + '_ {
        self.queues.keys().copied()
    }

    /// Chunks currently parked for `op`.
    pub fn parked_chunks(&self, op: u64) -> usize {
        self.queues.get(&op).map_or(0, |q| q.len())
    }

    /// Chunks currently parked across all ops.
    pub fn total_parked(&self) -> usize {
        self.total
    }

    /// Cumulative accounting snapshot.
    pub fn stats(&self) -> StashStats {
        self.stats
    }

    /// Drop `op`'s whole queue and ban the id from re-parking.
    fn evict(&mut self, op: u64) {
        if let Some(q) = self.queues.remove(&op) {
            self.total -= q.len();
            self.stats.evicted_chunks += q.len() as u64;
        }
        self.stats.evicted_ops += 1;
        if self.banned.insert(op) {
            self.banned_order.push_back(op);
            if self.banned_order.len() > STASH_BANNED_CAP {
                let old = self.banned_order.pop_front().expect("len > cap > 0");
                self.banned.remove(&old);
            }
        }
    }
}

/// Bcast FIFO geometry used by the runtime (paper-plausible defaults:
/// 4 KB slots, 64 of them).
pub const FIFO_SLOT_BYTES: usize = 4096;
/// Number of slots in the node-wide Bcast FIFO.
pub const FIFO_SLOTS: usize = 64;
/// Staging segment for the staged shared-memory broadcast: two halves of
/// 64 KB (double buffering).
pub const STAGING_HALF_BYTES: usize = 64 * 1024;

/// Per-node probe counters for the cluster protocols (relaxed, diagnostic).
#[derive(Default)]
pub struct ClusterNodeStats {
    /// Cluster broadcasts this node participated in as a non-root node.
    pub bcast_recv_ops: AtomicU64,
    /// Copy-out ranks that observed the reception counter *short of the
    /// full message* on their first copy — i.e. intra-node copy-out began
    /// while network chunks were still arriving. Non-zero values are the
    /// probe evidence that the integrated broadcast pipelines reception
    /// with copies (§V-B).
    pub copyout_overlapped: AtomicU64,
}

/// State shared by all ranks of the node.
pub struct NodeShared {
    n: usize,
    barrier: SenseBarrier,
    registry: WindowRegistry,
    /// Per-rank message counter: counter `r` is published by rank `r` when
    /// it acts as a producer (master / partition owner). Reset per
    /// operation by the intra-node collectives (reset protocol).
    msg_counters: Vec<MessageCounter>,
    /// Per-rank completion counter, expecting `n-1` arrivals.
    done_counters: Vec<CompletionCounter>,
    /// Ping-pong completion counters for the staged shmem broadcast.
    stage_done: [CompletionCounter; 2],
    /// The staged shared-memory segment (two halves).
    staging: Arc<SharedRegion>,
    /// The node-wide Bcast FIFO (all ranks are consumers; producers drain
    /// their own consumer — see `collectives::bcast_fifo`).
    fifo: Arc<BcastFifo<FifoMsg>>,
    /// Each rank claims its consumer handle at startup.
    consumer_slots: Vec<Mutex<Option<BcastConsumer<FifoMsg>>>>,
    /// Counters for the cluster protocols, used *cumulatively* (never
    /// reset — see `MessageCounter`'s cumulative-reuse docs). Index `r` in
    /// `0..n` is rank `r`'s producer stream (broadcast reception, allreduce
    /// partials); index `n + c` is the allreduce result stream of color `c`.
    aux_counters: Vec<MessageCounter>,
    /// Per-operation counters of the nonblocking scheduler (`bgp-sched`):
    /// keyed by op id + stream role, created on demand and retired by the
    /// progress engine. Fresh keys start at zero, so no base juggling.
    sched_bank: CounterBank,
    /// Per-rank nonblocking-op sequence. Advanced identically on every rank
    /// (posts are SPMD), persistent across jobs so op ids are never reused
    /// over the node's lifetime. Only rank `r` writes entry `r`.
    sched_seq: Vec<AtomicU64>,
    /// Chunks that arrived for nonblocking ops this node has not posted
    /// yet (a faster peer ran ahead, possibly across a job boundary):
    /// `(link tag, payload)` in arrival order, keyed by op id. Lives here
    /// rather than in the per-job scheduler so parked chunks survive until
    /// the op is finally posted. Only the node's progress engine (rank 0)
    /// touches it, so the lock is never contended.
    sched_stash: Mutex<SchedStash>,
    /// Cluster-protocol probe counters.
    cluster_stats: ClusterNodeStats,
}

impl NodeShared {
    pub(crate) fn new(n: usize) -> Arc<Self> {
        assert!(n >= 1, "a node has at least one rank");
        let (fifo, consumers) = BcastFifo::with_consumers(FIFO_SLOTS, n);
        let consumer_slots = consumers.into_iter().map(|c| Mutex::new(Some(c))).collect();
        Arc::new(NodeShared {
            n,
            barrier: SenseBarrier::new(n),
            registry: WindowRegistry::new(),
            msg_counters: (0..n).map(|_| MessageCounter::new()).collect(),
            done_counters: (0..n)
                .map(|_| CompletionCounter::new(n as u64 - 1))
                .collect(),
            stage_done: [
                CompletionCounter::new(n as u64 - 1),
                CompletionCounter::new(n as u64 - 1),
            ],
            staging: Arc::new(SharedRegion::new(2 * STAGING_HALF_BYTES)),
            fifo,
            consumer_slots,
            aux_counters: (0..2 * n).map(|_| MessageCounter::new()).collect(),
            sched_bank: CounterBank::new(),
            sched_seq: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sched_stash: Mutex::new(SchedStash::default()),
            cluster_stats: ClusterNodeStats::default(),
        })
    }

    /// Cluster-protocol probe counters of this node.
    pub fn cluster_stats(&self) -> &ClusterNodeStats {
        &self.cluster_stats
    }

    /// Ranks on the node.
    pub fn n_ranks(&self) -> usize {
        self.n
    }

    /// The node's window registry.
    pub fn registry(&self) -> &WindowRegistry {
        &self.registry
    }

    /// The nonblocking scheduler's per-operation counter bank.
    pub fn sched_bank(&self) -> &CounterBank {
        &self.sched_bank
    }

    /// Advance and return rank `rank`'s nonblocking-op sequence number.
    /// Only that rank may call this (the entry is logically rank-private;
    /// it lives here so it survives across jobs on persistent workers).
    pub fn next_sched_op(&self, rank: usize) -> u64 {
        use bgp_shmem::sync::atomic::Ordering;
        self.sched_seq[rank].fetch_add(1, Ordering::Relaxed)
    }

    /// The progress engine's parking lot for early chunks of not-yet-posted
    /// nonblocking ops (see the field docs).
    pub fn sched_stash(&self) -> &Mutex<SchedStash> {
        &self.sched_stash
    }
}

/// One rank's view of the node. Created by the runtime; the collectives of
/// [`crate::collectives`] are implemented as methods on this.
pub struct RankCtx {
    rank: usize,
    shared: Arc<NodeShared>,
    token: BarrierToken,
    consumer: BcastConsumer<FifoMsg>,
    /// Collective-call sequence number; identical across ranks because
    /// collectives are called SPMD in the same order. Used as window tags.
    pub(crate) op_seq: u64,
    /// Region pointers this rank has mapped before (its window cache, the
    /// subject of Figure 8).
    pub(crate) mapped_before: HashSet<usize>,
    /// Recycled Bcast-FIFO payload buffers (root side of `bcast_fifo`):
    /// buffers come back once every consumer retired the slot holding them,
    /// so the steady state allocates nothing per chunk.
    pub(crate) fifo_pool: VecDeque<Arc<[u8; FIFO_SLOT_BYTES]>>,
}

impl RankCtx {
    pub(crate) fn new(shared: Arc<NodeShared>, rank: usize) -> Self {
        let consumer = shared.consumer_slots[rank]
            .lock()
            .take()
            .expect("consumer already claimed");
        let token = shared.barrier.token();
        RankCtx {
            rank,
            shared,
            token,
            consumer,
            op_seq: 0,
            mapped_before: HashSet::new(),
            fifo_pool: VecDeque::new(),
        }
    }

    /// This rank's id in `0..n_ranks`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Ranks on the node.
    #[inline]
    pub fn n_ranks(&self) -> usize {
        self.shared.n
    }

    /// Intra-node barrier. Returns `true` on the releasing rank.
    pub fn barrier(&mut self) -> bool {
        self.shared.barrier.wait(&mut self.token)
    }

    /// Allocate an "application buffer" shareable with peers.
    pub fn alloc_buffer(&self, len: usize) -> Arc<SharedRegion> {
        Arc::new(SharedRegion::new(len))
    }

    /// The node's window registry (the CNK stand-in).
    pub fn registry(&self) -> &WindowRegistry {
        &self.shared.registry
    }

    /// Message counter published by `rank`.
    pub(crate) fn msg_counter(&self, rank: usize) -> &MessageCounter {
        &self.shared.msg_counters[rank]
    }

    /// Completion counter owned by `rank`.
    pub(crate) fn done_counter(&self, rank: usize) -> &CompletionCounter {
        &self.shared.done_counters[rank]
    }

    /// Staged-broadcast shared segment.
    pub(crate) fn staging(&self) -> &Arc<SharedRegion> {
        &self.shared.staging
    }

    /// Ping-pong stage counters.
    pub(crate) fn stage_done(&self, half: usize) -> &CompletionCounter {
        &self.shared.stage_done[half]
    }

    /// The node Bcast FIFO.
    pub(crate) fn fifo(&self) -> &Arc<BcastFifo<FifoMsg>> {
        &self.shared.fifo
    }

    /// This rank's FIFO consumer.
    pub(crate) fn consumer(&mut self) -> &mut BcastConsumer<FifoMsg> {
        &mut self.consumer
    }

    /// Cumulative counter `i` of the cluster protocols (`i < 2n`; see
    /// `NodeShared::aux_counters` for the index scheme).
    pub(crate) fn aux_counter(&self, i: usize) -> &MessageCounter {
        &self.shared.aux_counters[i]
    }

    /// This node's cluster probe counters.
    pub(crate) fn cluster_stats(&self) -> &ClusterNodeStats {
        &self.shared.cluster_stats
    }

    /// Take a FIFO payload buffer from the recycle pool (guaranteed to be
    /// uniquely owned), or allocate a fresh zeroed one if every pooled
    /// buffer is still in flight.
    pub(crate) fn take_fifo_buffer(&mut self) -> Arc<[u8; FIFO_SLOT_BYTES]> {
        if let Some(mut front) = self.fifo_pool.pop_front() {
            if Arc::get_mut(&mut front).is_some() {
                return front;
            }
            // Still referenced by an un-retired slot: keep it for later.
            self.fifo_pool.push_back(front);
        }
        Arc::new([0u8; FIFO_SLOT_BYTES])
    }

    /// Return a FIFO payload buffer to the recycle pool. The pool is capped
    /// at one buffer more than the FIFO has slots — the maximum that can be
    /// in flight plus the one being filled.
    pub(crate) fn return_fifo_buffer(&mut self, buf: Arc<[u8; FIFO_SLOT_BYTES]>) {
        if self.fifo_pool.len() <= FIFO_SLOTS {
            self.fifo_pool.push_back(buf);
        }
    }

    /// Advance and return the collective sequence number.
    pub(crate) fn next_op(&mut self) -> u64 {
        self.op_seq += 1;
        self.op_seq
    }
}

/// A persistent single-node runtime: `n` rank-threads parked on job queues,
/// executing one SPMD body per [`run`](Self::run) call.
///
/// This is [`Cluster`] with one node — see [`crate::cluster`] for the
/// multi-node form. Use it instead of [`run_node`] whenever more than one
/// operation runs: thread spawn and `NodeShared` construction happen once,
/// and per-rank state that feeds the hot paths (the window cache, the
/// allreduce accumulator, the FIFO buffer pool) survives across calls.
pub struct NodeRuntime {
    cluster: Cluster,
}

impl NodeRuntime {
    /// Spawn a persistent runtime of `n_ranks` rank-threads.
    pub fn new(n_ranks: usize) -> Self {
        NodeRuntime {
            cluster: Cluster::new(1, n_ranks),
        }
    }

    /// Ranks on the node.
    pub fn n_ranks(&self) -> usize {
        self.cluster.n_ranks()
    }

    /// Run `body` SPMD-style on every rank; returns each rank's result,
    /// indexed by rank.
    pub fn run<R, F>(&self, body: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&mut RankCtx) -> R + Send + Sync + 'static,
    {
        let mut per_node = self.cluster.run(move |cctx| body(cctx.intra()));
        per_node.pop().expect("one node")
    }
}

/// Run `n_ranks` rank-threads, each executing `body(&mut ctx)` SPMD-style.
/// Returns each rank's result, indexed by rank.
///
/// One-shot: spawns a [`NodeRuntime`], runs the body once, and tears the
/// runtime down. Hold a `NodeRuntime` instead when iterating.
///
/// ```
/// let sums = bgp_smp::run_node(4, |ctx| {
///     let me = ctx.rank();
///     ctx.barrier();
///     me * 10
/// });
/// assert_eq!(sums, vec![0, 10, 20, 30]);
/// ```
pub fn run_node<R, F>(n_ranks: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    let cluster = Cluster::new(1, n_ranks);
    let wrap = |cctx: &mut crate::cluster::ClusterCtx| body(cctx.intra());
    let mut per_node = cluster.run_borrowed(&wrap);
    per_node.pop().expect("one node")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_distinct_and_complete() {
        let out = run_node(4, |ctx| ctx.rank());
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn barrier_is_usable_from_ctx() {
        let out = run_node(3, |ctx| {
            let mut releases = 0;
            for _ in 0..10 {
                if ctx.barrier() {
                    releases += 1;
                }
            }
            releases
        });
        assert_eq!(out.iter().sum::<i32>(), 10);
    }

    #[test]
    fn single_rank_node() {
        let out = run_node(1, |ctx| {
            ctx.barrier();
            ctx.n_ranks()
        });
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn registry_is_node_wide() {
        let out = run_node(2, |ctx| {
            if ctx.rank() == 0 {
                let buf = ctx.alloc_buffer(16);
                unsafe { buf.write(0, &[42; 16]) };
                ctx.registry().expose(0, 999, buf);
            }
            ctx.barrier();
            let mapped = ctx.registry().map_blocking(0, 999, false);
            let mut b = [0u8; 1];
            unsafe { mapped.read(3, &mut b) };
            ctx.barrier();
            b[0]
        });
        assert_eq!(out, vec![42, 42]);
    }

    #[test]
    fn node_runtime_persists_rank_state_across_runs() {
        let rt = NodeRuntime::new(2);
        assert_eq!(rt.n_ranks(), 2);
        // op_seq advances across run() calls: the same RankCtx is reused.
        let first = rt.run(|ctx| ctx.next_op());
        let second = rt.run(|ctx| ctx.next_op());
        assert_eq!(first, vec![1, 1]);
        assert_eq!(second, vec![2, 2]);
    }

    #[test]
    fn node_runtime_runs_many_ops_without_respawn() {
        let rt = NodeRuntime::new(4);
        for round in 0..20u64 {
            let out = rt.run(move |ctx| {
                ctx.barrier();
                round + ctx.rank() as u64
            });
            assert_eq!(out, (0..4).map(|r| round + r).collect::<Vec<_>>());
        }
    }

    /// The S2 regression: flooding the stash with chunks for a bogus op id
    /// must stay bounded. On the old unbounded `HashMap<u64, VecDeque<..>>`
    /// stash every parked chunk was retained forever, so `total_parked`
    /// would reach 10_000 here.
    #[test]
    fn stash_flood_with_bogus_op_is_bounded() {
        let mut stash = SchedStash::default();
        let bogus_op = 0xdead_beef;
        let payload = [7u8; 64];
        let mut rejected = 0u64;
        for i in 0..10_000u64 {
            if stash.park(bogus_op, i, &payload).is_err() {
                rejected += 1;
            }
        }
        assert!(stash.total_parked() <= STASH_TOTAL_CAP);
        // The flooding op tripped its per-op cap, was evicted whole, and is
        // now banned: nothing of it may remain parked.
        assert_eq!(stash.parked_chunks(bogus_op), 0);
        let s = stash.stats();
        assert_eq!(
            stash.park(bogus_op, 0, &payload),
            Err(StashEviction::Banned { op: bogus_op })
        );
        assert_eq!(s.parked, STASH_PER_OP_CAP as u64);
        assert!(s.evicted_ops >= 1);
        // Every chunk is accounted for: parked once then evicted, or
        // rejected at the door.
        assert_eq!(s.parked + rejected, 10_000);
        assert_eq!(s.evicted_chunks, s.parked + rejected);
    }

    /// The total cap evicts the largest hoarder so well-behaved ops can
    /// still park.
    #[test]
    fn stash_total_cap_evicts_largest_queue() {
        let mut stash = SchedStash::default();
        let payload = [1u8; 8];
        // Many distinct ops, each under the per-op cap, together exceeding
        // the total cap.
        let per_op = STASH_PER_OP_CAP / 2;
        let n_ops = STASH_TOTAL_CAP / per_op + 3;
        for op in 0..n_ops as u64 {
            for t in 0..per_op as u64 {
                let _ = stash.park(op, t, &payload);
            }
        }
        assert!(stash.total_parked() <= STASH_TOTAL_CAP);
        assert!(stash.stats().evicted_ops >= 1);
        // A fresh op can still park after the evictions made room.
        assert_eq!(stash.park(u64::MAX, 0, &payload), Ok(()));
    }

    /// Replay order survives park/pop round-trips and the queue is removed
    /// once drained.
    #[test]
    fn stash_pops_in_arrival_order() {
        let mut stash = SchedStash::default();
        for t in 0..5u64 {
            stash.park(9, t, &[t as u8]).unwrap();
        }
        for t in 0..5u64 {
            assert_eq!(stash.front_tag(9), Some(t));
            let (tag, bytes) = stash.pop_front(9).unwrap();
            assert_eq!((tag, bytes[0] as u64), (t, t));
        }
        assert_eq!(stash.front_tag(9), None);
        assert_eq!(stash.total_parked(), 0);
        assert_eq!(stash.parked_ops().count(), 0);
    }
}
