//! The node runtime: one persistent thread per MPI rank of one node.
//!
//! [`run_node`] executes a body SPMD-style on `n` rank-threads over a shared
//! [`NodeShared`] state — the barrier, the window registry, the per-rank
//! message/completion counters, one node-wide Bcast FIFO — handing each
//! thread a [`RankCtx`]. The intra-node collectives in
//! [`crate::collectives`] are methods on `RankCtx`, called SPMD-style by all
//! ranks like MPI collectives.
//!
//! Since the cluster runtime landed, `run_node` is a convenience shim over
//! [`NodeRuntime`] (itself a single-node [`crate::cluster::Cluster`]): the
//! rank threads are *persistent* — parked on a job queue between operations
//! — so callers that issue many operations should hold a `NodeRuntime` (or
//! `Cluster`) and pay thread spawn + `NodeShared` construction once, not
//! per call. `run_node` builds and drops a one-shot runtime, preserving the
//! old semantics for tests and examples.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use bgp_shmem::sync::atomic::AtomicU64;
use bgp_shmem::sync::Mutex;

use bgp_shmem::{
    BcastConsumer, BcastFifo, CompletionCounter, CounterBank, MessageCounter, SharedRegion,
    WindowRegistry,
};

use crate::barrier::{BarrierToken, SenseBarrier};
use crate::cluster::Cluster;
use crate::collectives::FifoMsg;

/// Parked nonblocking-scheduler chunks, keyed by op id: `(link tag,
/// payload)` pairs in arrival order.
pub type SchedStash = HashMap<u64, VecDeque<(u64, Box<[u8]>)>>;

/// Bcast FIFO geometry used by the runtime (paper-plausible defaults:
/// 4 KB slots, 64 of them).
pub const FIFO_SLOT_BYTES: usize = 4096;
/// Number of slots in the node-wide Bcast FIFO.
pub const FIFO_SLOTS: usize = 64;
/// Staging segment for the staged shared-memory broadcast: two halves of
/// 64 KB (double buffering).
pub const STAGING_HALF_BYTES: usize = 64 * 1024;

/// Per-node probe counters for the cluster protocols (relaxed, diagnostic).
#[derive(Default)]
pub struct ClusterNodeStats {
    /// Cluster broadcasts this node participated in as a non-root node.
    pub bcast_recv_ops: AtomicU64,
    /// Copy-out ranks that observed the reception counter *short of the
    /// full message* on their first copy — i.e. intra-node copy-out began
    /// while network chunks were still arriving. Non-zero values are the
    /// probe evidence that the integrated broadcast pipelines reception
    /// with copies (§V-B).
    pub copyout_overlapped: AtomicU64,
}

/// State shared by all ranks of the node.
pub struct NodeShared {
    n: usize,
    barrier: SenseBarrier,
    registry: WindowRegistry,
    /// Per-rank message counter: counter `r` is published by rank `r` when
    /// it acts as a producer (master / partition owner). Reset per
    /// operation by the intra-node collectives (reset protocol).
    msg_counters: Vec<MessageCounter>,
    /// Per-rank completion counter, expecting `n-1` arrivals.
    done_counters: Vec<CompletionCounter>,
    /// Ping-pong completion counters for the staged shmem broadcast.
    stage_done: [CompletionCounter; 2],
    /// The staged shared-memory segment (two halves).
    staging: Arc<SharedRegion>,
    /// The node-wide Bcast FIFO (all ranks are consumers; producers drain
    /// their own consumer — see `collectives::bcast_fifo`).
    fifo: Arc<BcastFifo<FifoMsg>>,
    /// Each rank claims its consumer handle at startup.
    consumer_slots: Vec<Mutex<Option<BcastConsumer<FifoMsg>>>>,
    /// Counters for the cluster protocols, used *cumulatively* (never
    /// reset — see `MessageCounter`'s cumulative-reuse docs). Index `r` in
    /// `0..n` is rank `r`'s producer stream (broadcast reception, allreduce
    /// partials); index `n + c` is the allreduce result stream of color `c`.
    aux_counters: Vec<MessageCounter>,
    /// Per-operation counters of the nonblocking scheduler (`bgp-sched`):
    /// keyed by op id + stream role, created on demand and retired by the
    /// progress engine. Fresh keys start at zero, so no base juggling.
    sched_bank: CounterBank,
    /// Per-rank nonblocking-op sequence. Advanced identically on every rank
    /// (posts are SPMD), persistent across jobs so op ids are never reused
    /// over the node's lifetime. Only rank `r` writes entry `r`.
    sched_seq: Vec<AtomicU64>,
    /// Chunks that arrived for nonblocking ops this node has not posted
    /// yet (a faster peer ran ahead, possibly across a job boundary):
    /// `(link tag, payload)` in arrival order, keyed by op id. Lives here
    /// rather than in the per-job scheduler so parked chunks survive until
    /// the op is finally posted. Only the node's progress engine (rank 0)
    /// touches it, so the lock is never contended.
    sched_stash: Mutex<SchedStash>,
    /// Cluster-protocol probe counters.
    cluster_stats: ClusterNodeStats,
}

impl NodeShared {
    pub(crate) fn new(n: usize) -> Arc<Self> {
        assert!(n >= 1, "a node has at least one rank");
        let (fifo, consumers) = BcastFifo::with_consumers(FIFO_SLOTS, n);
        let consumer_slots = consumers.into_iter().map(|c| Mutex::new(Some(c))).collect();
        Arc::new(NodeShared {
            n,
            barrier: SenseBarrier::new(n),
            registry: WindowRegistry::new(),
            msg_counters: (0..n).map(|_| MessageCounter::new()).collect(),
            done_counters: (0..n)
                .map(|_| CompletionCounter::new(n as u64 - 1))
                .collect(),
            stage_done: [
                CompletionCounter::new(n as u64 - 1),
                CompletionCounter::new(n as u64 - 1),
            ],
            staging: Arc::new(SharedRegion::new(2 * STAGING_HALF_BYTES)),
            fifo,
            consumer_slots,
            aux_counters: (0..2 * n).map(|_| MessageCounter::new()).collect(),
            sched_bank: CounterBank::new(),
            sched_seq: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sched_stash: Mutex::new(HashMap::new()),
            cluster_stats: ClusterNodeStats::default(),
        })
    }

    /// Cluster-protocol probe counters of this node.
    pub fn cluster_stats(&self) -> &ClusterNodeStats {
        &self.cluster_stats
    }

    /// Ranks on the node.
    pub fn n_ranks(&self) -> usize {
        self.n
    }

    /// The node's window registry.
    pub fn registry(&self) -> &WindowRegistry {
        &self.registry
    }

    /// The nonblocking scheduler's per-operation counter bank.
    pub fn sched_bank(&self) -> &CounterBank {
        &self.sched_bank
    }

    /// Advance and return rank `rank`'s nonblocking-op sequence number.
    /// Only that rank may call this (the entry is logically rank-private;
    /// it lives here so it survives across jobs on persistent workers).
    pub fn next_sched_op(&self, rank: usize) -> u64 {
        use bgp_shmem::sync::atomic::Ordering;
        self.sched_seq[rank].fetch_add(1, Ordering::Relaxed)
    }

    /// The progress engine's parking lot for early chunks of not-yet-posted
    /// nonblocking ops (see the field docs).
    pub fn sched_stash(&self) -> &Mutex<SchedStash> {
        &self.sched_stash
    }
}

/// One rank's view of the node. Created by the runtime; the collectives of
/// [`crate::collectives`] are implemented as methods on this.
pub struct RankCtx {
    rank: usize,
    shared: Arc<NodeShared>,
    token: BarrierToken,
    consumer: BcastConsumer<FifoMsg>,
    /// Collective-call sequence number; identical across ranks because
    /// collectives are called SPMD in the same order. Used as window tags.
    pub(crate) op_seq: u64,
    /// Region pointers this rank has mapped before (its window cache, the
    /// subject of Figure 8).
    pub(crate) mapped_before: HashSet<usize>,
    /// Recycled Bcast-FIFO payload buffers (root side of `bcast_fifo`):
    /// buffers come back once every consumer retired the slot holding them,
    /// so the steady state allocates nothing per chunk.
    pub(crate) fifo_pool: VecDeque<Arc<[u8; FIFO_SLOT_BYTES]>>,
}

impl RankCtx {
    pub(crate) fn new(shared: Arc<NodeShared>, rank: usize) -> Self {
        let consumer = shared.consumer_slots[rank]
            .lock()
            .take()
            .expect("consumer already claimed");
        let token = shared.barrier.token();
        RankCtx {
            rank,
            shared,
            token,
            consumer,
            op_seq: 0,
            mapped_before: HashSet::new(),
            fifo_pool: VecDeque::new(),
        }
    }

    /// This rank's id in `0..n_ranks`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Ranks on the node.
    #[inline]
    pub fn n_ranks(&self) -> usize {
        self.shared.n
    }

    /// Intra-node barrier. Returns `true` on the releasing rank.
    pub fn barrier(&mut self) -> bool {
        self.shared.barrier.wait(&mut self.token)
    }

    /// Allocate an "application buffer" shareable with peers.
    pub fn alloc_buffer(&self, len: usize) -> Arc<SharedRegion> {
        Arc::new(SharedRegion::new(len))
    }

    /// The node's window registry (the CNK stand-in).
    pub fn registry(&self) -> &WindowRegistry {
        &self.shared.registry
    }

    /// Message counter published by `rank`.
    pub(crate) fn msg_counter(&self, rank: usize) -> &MessageCounter {
        &self.shared.msg_counters[rank]
    }

    /// Completion counter owned by `rank`.
    pub(crate) fn done_counter(&self, rank: usize) -> &CompletionCounter {
        &self.shared.done_counters[rank]
    }

    /// Staged-broadcast shared segment.
    pub(crate) fn staging(&self) -> &Arc<SharedRegion> {
        &self.shared.staging
    }

    /// Ping-pong stage counters.
    pub(crate) fn stage_done(&self, half: usize) -> &CompletionCounter {
        &self.shared.stage_done[half]
    }

    /// The node Bcast FIFO.
    pub(crate) fn fifo(&self) -> &Arc<BcastFifo<FifoMsg>> {
        &self.shared.fifo
    }

    /// This rank's FIFO consumer.
    pub(crate) fn consumer(&mut self) -> &mut BcastConsumer<FifoMsg> {
        &mut self.consumer
    }

    /// Cumulative counter `i` of the cluster protocols (`i < 2n`; see
    /// `NodeShared::aux_counters` for the index scheme).
    pub(crate) fn aux_counter(&self, i: usize) -> &MessageCounter {
        &self.shared.aux_counters[i]
    }

    /// This node's cluster probe counters.
    pub(crate) fn cluster_stats(&self) -> &ClusterNodeStats {
        &self.shared.cluster_stats
    }

    /// Take a FIFO payload buffer from the recycle pool (guaranteed to be
    /// uniquely owned), or allocate a fresh zeroed one if every pooled
    /// buffer is still in flight.
    pub(crate) fn take_fifo_buffer(&mut self) -> Arc<[u8; FIFO_SLOT_BYTES]> {
        if let Some(mut front) = self.fifo_pool.pop_front() {
            if Arc::get_mut(&mut front).is_some() {
                return front;
            }
            // Still referenced by an un-retired slot: keep it for later.
            self.fifo_pool.push_back(front);
        }
        Arc::new([0u8; FIFO_SLOT_BYTES])
    }

    /// Return a FIFO payload buffer to the recycle pool. The pool is capped
    /// at one buffer more than the FIFO has slots — the maximum that can be
    /// in flight plus the one being filled.
    pub(crate) fn return_fifo_buffer(&mut self, buf: Arc<[u8; FIFO_SLOT_BYTES]>) {
        if self.fifo_pool.len() <= FIFO_SLOTS {
            self.fifo_pool.push_back(buf);
        }
    }

    /// Advance and return the collective sequence number.
    pub(crate) fn next_op(&mut self) -> u64 {
        self.op_seq += 1;
        self.op_seq
    }
}

/// A persistent single-node runtime: `n` rank-threads parked on job queues,
/// executing one SPMD body per [`run`](Self::run) call.
///
/// This is [`Cluster`] with one node — see [`crate::cluster`] for the
/// multi-node form. Use it instead of [`run_node`] whenever more than one
/// operation runs: thread spawn and `NodeShared` construction happen once,
/// and per-rank state that feeds the hot paths (the window cache, the
/// allreduce accumulator, the FIFO buffer pool) survives across calls.
pub struct NodeRuntime {
    cluster: Cluster,
}

impl NodeRuntime {
    /// Spawn a persistent runtime of `n_ranks` rank-threads.
    pub fn new(n_ranks: usize) -> Self {
        NodeRuntime {
            cluster: Cluster::new(1, n_ranks),
        }
    }

    /// Ranks on the node.
    pub fn n_ranks(&self) -> usize {
        self.cluster.n_ranks()
    }

    /// Run `body` SPMD-style on every rank; returns each rank's result,
    /// indexed by rank.
    pub fn run<R, F>(&self, body: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&mut RankCtx) -> R + Send + Sync + 'static,
    {
        let mut per_node = self.cluster.run(move |cctx| body(cctx.intra()));
        per_node.pop().expect("one node")
    }
}

/// Run `n_ranks` rank-threads, each executing `body(&mut ctx)` SPMD-style.
/// Returns each rank's result, indexed by rank.
///
/// One-shot: spawns a [`NodeRuntime`], runs the body once, and tears the
/// runtime down. Hold a `NodeRuntime` instead when iterating.
///
/// ```
/// let sums = bgp_smp::run_node(4, |ctx| {
///     let me = ctx.rank();
///     ctx.barrier();
///     me * 10
/// });
/// assert_eq!(sums, vec![0, 10, 20, 30]);
/// ```
pub fn run_node<R, F>(n_ranks: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut RankCtx) -> R + Sync,
{
    let cluster = Cluster::new(1, n_ranks);
    let wrap = |cctx: &mut crate::cluster::ClusterCtx| body(cctx.intra());
    let mut per_node = cluster.run_borrowed(&wrap);
    per_node.pop().expect("one node")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_distinct_and_complete() {
        let out = run_node(4, |ctx| ctx.rank());
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn barrier_is_usable_from_ctx() {
        let out = run_node(3, |ctx| {
            let mut releases = 0;
            for _ in 0..10 {
                if ctx.barrier() {
                    releases += 1;
                }
            }
            releases
        });
        assert_eq!(out.iter().sum::<i32>(), 10);
    }

    #[test]
    fn single_rank_node() {
        let out = run_node(1, |ctx| {
            ctx.barrier();
            ctx.n_ranks()
        });
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn registry_is_node_wide() {
        let out = run_node(2, |ctx| {
            if ctx.rank() == 0 {
                let buf = ctx.alloc_buffer(16);
                unsafe { buf.write(0, &[42; 16]) };
                ctx.registry().expose(0, 999, buf);
            }
            ctx.barrier();
            let mapped = ctx.registry().map_blocking(0, 999, false);
            let mut b = [0u8; 1];
            unsafe { mapped.read(3, &mut b) };
            ctx.barrier();
            b[0]
        });
        assert_eq!(out, vec![42, 42]);
    }

    #[test]
    fn node_runtime_persists_rank_state_across_runs() {
        let rt = NodeRuntime::new(2);
        assert_eq!(rt.n_ranks(), 2);
        // op_seq advances across run() calls: the same RankCtx is reused.
        let first = rt.run(|ctx| ctx.next_op());
        let second = rt.run(|ctx| ctx.next_op());
        assert_eq!(first, vec![1, 1]);
        assert_eq!(second, vec![2, 2]);
    }

    #[test]
    fn node_runtime_runs_many_ops_without_respawn() {
        let rt = NodeRuntime::new(4);
        for round in 0..20u64 {
            let out = rt.run(move |ctx| {
                ctx.barrier();
                round + ctx.rank() as u64
            });
            assert_eq!(out, (0..4).map(|r| round + r).collect::<Vec<_>>());
        }
    }
}
