//! A race-checked `UnsafeCell`.
//!
//! The shmem primitives keep message payloads in `UnsafeCell`s and rely on
//! the surrounding atomics for ordering. The model cell makes that reliance
//! checkable: every access records the accessing thread's vector clock, and
//! an access that is not ordered (by happens-before) with the latest write —
//! or a write not ordered with outstanding reads — is reported as a data
//! race *before* the access executes, with both source locations.
//!
//! Accesses go through [`UnsafeCell::with`] / [`UnsafeCell::with_mut`]
//! closures (the `loom` API shape) so the facade can hand out raw pointers
//! in both std and model builds.

use std::sync::Mutex;

use crate::rt::{cell_read, cell_write, CellState};

/// `std::cell::UnsafeCell` plus happens-before bookkeeping.
pub struct UnsafeCell<T> {
    inner: std::cell::UnsafeCell<T>,
    state: Mutex<CellState>,
}

// Like the std cell, sharing is sound only under external synchronization —
// which is exactly what the race checker verifies on every access.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
unsafe impl<T: Send + Sync> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    #[track_caller]
    pub fn new(value: T) -> Self {
        UnsafeCell {
            inner: std::cell::UnsafeCell::new(value),
            state: Mutex::new(CellState::created()),
        }
    }

    /// Immutable access.
    ///
    /// # Safety
    ///
    /// As for dereferencing the raw pointer from `std::cell::UnsafeCell::get`:
    /// the caller's protocol must order this read after the write that
    /// produced the value. The model checker verifies exactly that and fails
    /// the schedule instead of performing a racy read.
    #[track_caller]
    pub unsafe fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        cell_read(&self.state);
        f(self.inner.get())
    }

    /// Mutable access.
    ///
    /// # Safety
    ///
    /// As for [`Self::with`], plus exclusivity: the protocol must order this
    /// write after every earlier access. Checked in model runs.
    #[track_caller]
    pub unsafe fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        cell_write(&self.state);
        f(self.inner.get())
    }

    /// Direct access through an exclusive borrow — always race-free.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for UnsafeCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> From<T> for UnsafeCell<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}
