//! The model runtime: cooperative scheduler, vector clocks, exploration.
//!
//! One execution runs the test closure on *model threads* — real OS threads
//! serialized so that exactly one runs at a time. Every atomic access (and
//! every spawn/join/spin) is a scheduling point where the running thread
//! hands control back and the next runnable thread is picked. The sequence
//! of picks *is* the schedule; recording it makes every execution exactly
//! replayable, and enumerating it (DFS) or sampling it (seeded random)
//! explores the interleaving space.
//!
//! Happens-before is tracked with vector clocks: `Release` stores publish
//! the writer's clock on the location, `Acquire` loads join it, and model
//! [`crate::cell::UnsafeCell`] accesses are checked for ordering *before*
//! the access is performed — a race is reported instead of executed.

use std::any::Any;
use std::collections::HashSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

use crate::rng::SplitMix64;

/// Hard cap on model threads per execution (the choice trace stores thread
/// picks as `u16`, and clocks are dense vectors).
const MAX_THREADS: usize = 32;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A dense vector clock over model-thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    pub(crate) const fn new() -> Self {
        VClock(Vec::new())
    }

    fn get(&self, i: usize) -> u32 {
        self.0.get(i).copied().unwrap_or(0)
    }

    pub(crate) fn bump(&mut self, i: usize) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] += 1;
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// `self` happened-before-or-equals `other`.
    pub(crate) fn leq(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }

    pub(crate) fn clear(&mut self) {
        self.0.clear();
    }
}

// ---------------------------------------------------------------------------
// Runtime state
// ---------------------------------------------------------------------------

/// Why a model thread cannot currently be picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThState {
    Runnable,
    /// Waiting for the given thread id to finish.
    BlockedJoin(usize),
    Finished,
}

struct Th {
    state: ThState,
    clock: VClock,
    /// `Some(store_count)` while the thread sits at a [`spin`] point: it is
    /// waiting on a read-only condition that only a store can change, so it
    /// is not rescheduled until the global store counter moves past the
    /// recorded value.
    parked_at: Option<u64>,
    /// The closure's boxed return value, for `JoinHandle::join`.
    result: Option<Box<dyn Any + Send>>,
}

impl Th {
    fn new(clock: VClock) -> Self {
        Th {
            state: ThState::Runnable,
            clock,
            parked_at: None,
            result: None,
        }
    }
}

pub(crate) struct Sched {
    threads: Vec<Th>,
    current: usize,
    aborted: bool,
    complete: bool,
    failure: Option<Failure>,
    /// `(chosen, options)` per scheduling point — the schedule.
    trace: Vec<(u16, u16)>,
    /// Forced choice prefix (DFS prefix or replay trace).
    plan: Vec<u16>,
    /// Random tail chooser (random mode); `None` picks the first eligible.
    rng: Option<SplitMix64>,
    /// Total stores this execution; spin parking keys off it.
    store_count: u64,
    steps: u64,
    max_steps: u64,
    mutations: HashSet<String>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Rt {
    sched: Mutex<Sched>,
    cv: Condvar,
}

impl Rt {
    fn new(cfg: &Config, plan: Vec<u16>, rng: Option<SplitMix64>) -> Self {
        Rt {
            sched: Mutex::new(Sched {
                threads: Vec::new(),
                current: 0,
                aborted: false,
                complete: false,
                failure: None,
                trace: Vec::new(),
                plan,
                rng,
                store_count: 0,
                steps: 0,
                max_steps: cfg.max_steps,
                mutations: cfg.mutations.iter().cloned().collect(),
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Sched {
    /// Threads that may be picked right now.
    fn eligible(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == ThState::Runnable && t.parked_at != Some(self.store_count))
            .map(|(i, _)| i)
            .collect()
    }

    /// Pick the next thread per plan/rng/first-eligible and record the
    /// choice. `Err` is a deadlock: live threads exist but none can run.
    fn pick(&mut self) -> Result<usize, String> {
        let elig = self.eligible();
        if elig.is_empty() {
            let spinning = self
                .threads
                .iter()
                .filter(|t| t.state == ThState::Runnable)
                .count();
            let joined = self
                .threads
                .iter()
                .filter(|t| matches!(t.state, ThState::BlockedJoin(_)))
                .count();
            return Err(format!(
                "deadlock: {spinning} thread(s) spin-parked and {joined} blocked on join, \
                 with no store that could release them"
            ));
        }
        let options = elig.len();
        let pos = self.trace.len();
        let chosen = if pos < self.plan.len() {
            let c = self.plan[pos] as usize;
            assert!(
                c < options,
                "bgp-check: replay/DFS prefix choice {c} out of range {options} at point {pos}; \
                 the test closure is nondeterministic outside the modeled schedule"
            );
            c
        } else if let Some(rng) = &mut self.rng {
            rng.below(options)
        } else {
            0
        };
        self.trace.push((chosen as u16, options as u16));
        Ok(elig[chosen])
    }

    fn record_failure(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure {
                kind,
                message,
                trace: self.trace.iter().map(|&(c, _)| c).collect(),
                schedule: 0,
                seed: None,
            });
        }
        self.aborted = true;
    }
}

// ---------------------------------------------------------------------------
// Per-thread context
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) rt: Arc<Rt>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Payload used to unwind model threads when an execution aborts; never a
/// user-visible failure by itself.
struct AbortToken;

fn abort_panic() -> ! {
    std::panic::panic_any(AbortToken)
}

/// Silence the default panic printer for model threads: their panics are
/// captured and re-reported (with schedule and replay info) by the checker.
fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if ctx().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

// ---------------------------------------------------------------------------
// Scheduling points
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PointKind {
    /// A regular operation (atomic access, spawn, join poll).
    Op,
    /// A spin-wait hint: the thread parks until someone stores.
    Spin,
}

/// The heart of the checker: hand control to the scheduler and wait to be
/// picked again. No-op outside a model run (callers provide their own
/// fallback) and during unwinding (so destructors that touch the facade
/// cannot double-panic mid-abort).
pub(crate) fn schedule_point(kind: PointKind) {
    let Some(c) = ctx() else { return };
    if std::thread::panicking() {
        return;
    }
    let mut s = c.rt.lock();
    if s.aborted {
        drop(s);
        abort_panic();
    }
    s.steps += 1;
    if s.steps > s.max_steps {
        let msg = format!(
            "step budget exceeded ({} scheduling points): likely livelock",
            s.max_steps
        );
        s.record_failure(FailureKind::StepLimit, msg);
        c.rt.cv.notify_all();
        drop(s);
        abort_panic();
    }
    s.threads[c.tid].parked_at = match kind {
        PointKind::Spin => Some(s.store_count),
        PointKind::Op => None,
    };
    match s.pick() {
        Ok(next) => s.current = next,
        Err(msg) => {
            s.record_failure(FailureKind::Deadlock, msg);
            c.rt.cv.notify_all();
            drop(s);
            abort_panic();
        }
    }
    c.rt.cv.notify_all();
    while s.current != c.tid && !s.aborted {
        s = c.rt.cv.wait(s).unwrap_or_else(|e| e.into_inner());
    }
    if s.aborted {
        drop(s);
        abort_panic();
    }
}

// ---------------------------------------------------------------------------
// Atomic operations (called from `crate::sync::atomic`)
// ---------------------------------------------------------------------------

pub use std::sync::atomic::Ordering;

fn acquires(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Shared state of one model atomic.
pub(crate) struct AtomicData<T> {
    pub(crate) value: T,
    /// The release clock of the location: joined into any `Acquire` reader.
    msg_clock: VClock,
}

impl<T> AtomicData<T> {
    pub(crate) const fn new(value: T) -> Self {
        AtomicData {
            value,
            msg_clock: VClock::new(),
        }
    }
}

fn lock_data<T>(d: &Mutex<AtomicData<T>>) -> MutexGuard<'_, AtomicData<T>> {
    d.lock().unwrap_or_else(|e| e.into_inner())
}

pub(crate) fn op_load<T: Copy>(a: &Mutex<AtomicData<T>>, ord: Ordering) -> T {
    let Some(c) = ctx() else {
        // Outside a model run: mutex-serialized (sequentially consistent),
        // strictly stronger than any requested ordering.
        return lock_data(a).value;
    };
    schedule_point(PointKind::Op);
    let mut s = c.rt.lock();
    let d = lock_data(a);
    let th = &mut s.threads[c.tid];
    th.clock.bump(c.tid);
    if acquires(ord) {
        th.clock.join(&d.msg_clock);
    }
    d.value
}

pub(crate) fn op_store<T: Copy>(a: &Mutex<AtomicData<T>>, value: T, ord: Ordering) {
    let Some(c) = ctx() else {
        lock_data(a).value = value;
        return;
    };
    schedule_point(PointKind::Op);
    let mut s = c.rt.lock();
    let mut d = lock_data(a);
    let tid = c.tid;
    s.threads[tid].clock.bump(tid);
    if releases(ord) {
        d.msg_clock = s.threads[tid].clock.clone();
    } else {
        // A plain store breaks the location's release sequence.
        d.msg_clock.clear();
    }
    d.value = value;
    s.store_count += 1;
}

/// Read-modify-write: returns the previous value. A relaxed RMW leaves the
/// location's release clock untouched (it *continues* the release sequence,
/// per the C++11 rules the hardware fetch-and-increment relies on).
pub(crate) fn op_rmw<T: Copy>(
    a: &Mutex<AtomicData<T>>,
    ord: Ordering,
    f: impl FnOnce(T) -> T,
) -> T {
    let Some(c) = ctx() else {
        let mut d = lock_data(a);
        let prev = d.value;
        d.value = f(prev);
        return prev;
    };
    schedule_point(PointKind::Op);
    let mut s = c.rt.lock();
    let mut d = lock_data(a);
    let tid = c.tid;
    s.threads[tid].clock.bump(tid);
    if acquires(ord) {
        s.threads[tid].clock.join(&d.msg_clock);
    }
    let prev = d.value;
    d.value = f(prev);
    if releases(ord) {
        let clock = s.threads[tid].clock.clone();
        d.msg_clock.join(&clock);
    }
    s.store_count += 1;
    prev
}

pub(crate) fn op_cas<T: Copy + PartialEq>(
    a: &Mutex<AtomicData<T>>,
    current: T,
    new: T,
    success: Ordering,
    failure: Ordering,
) -> Result<T, T> {
    let Some(c) = ctx() else {
        let mut d = lock_data(a);
        if d.value == current {
            d.value = new;
            return Ok(current);
        }
        return Err(d.value);
    };
    schedule_point(PointKind::Op);
    let mut s = c.rt.lock();
    let mut d = lock_data(a);
    let tid = c.tid;
    s.threads[tid].clock.bump(tid);
    if d.value == current {
        if acquires(success) {
            s.threads[tid].clock.join(&d.msg_clock);
        }
        if releases(success) {
            let clock = s.threads[tid].clock.clone();
            d.msg_clock.join(&clock);
        }
        d.value = new;
        s.store_count += 1;
        Ok(current)
    } else {
        if acquires(failure) {
            s.threads[tid].clock.join(&d.msg_clock);
        }
        Err(d.value)
    }
}

// ---------------------------------------------------------------------------
// Cell (non-atomic data) race checking — called from `crate::cell`
// ---------------------------------------------------------------------------

/// One recorded cell access: who, when (their clock), where in the source.
pub(crate) struct CellAccess {
    tid: usize,
    clock: VClock,
    loc: &'static std::panic::Location<'static>,
}

#[derive(Default)]
pub(crate) struct CellState {
    last_write: Option<CellAccess>,
    /// Latest read per thread since the last write.
    reads: Vec<CellAccess>,
}

impl CellState {
    /// Record the creating thread as the initial writer, so construction is
    /// ordered before every post-spawn access without special cases.
    #[track_caller]
    pub(crate) fn created() -> Self {
        let mut st = CellState::default();
        if let Some(c) = ctx() {
            let s = c.rt.lock();
            st.last_write = Some(CellAccess {
                tid: c.tid,
                clock: s.threads[c.tid].clock.clone(),
                loc: std::panic::Location::caller(),
            });
        }
        st
    }
}

fn race_fail(
    c: &Ctx,
    what: &str,
    here: &'static std::panic::Location<'static>,
    other: &CellAccess,
) -> ! {
    let mut s = c.rt.lock();
    let msg = format!(
        "data race: {what} at {here} (thread {}) is unordered with access at {} (thread {})",
        c.tid, other.loc, other.tid
    );
    s.record_failure(FailureKind::Race, msg);
    c.rt.cv.notify_all();
    drop(s);
    abort_panic()
}

#[track_caller]
pub(crate) fn cell_read(state: &Mutex<CellState>) {
    let Some(c) = ctx() else { return };
    if std::thread::panicking() {
        return;
    }
    let here = std::panic::Location::caller();
    let mut s = c.rt.lock();
    s.threads[c.tid].clock.bump(c.tid);
    let clock = s.threads[c.tid].clock.clone();
    drop(s);
    let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = &st.last_write {
        if w.tid != c.tid && !w.clock.leq(&clock) {
            let other = CellAccess {
                tid: w.tid,
                clock: w.clock.clone(),
                loc: w.loc,
            };
            drop(st);
            race_fail(&c, "read", here, &other);
        }
    }
    match st.reads.iter_mut().find(|r| r.tid == c.tid) {
        Some(r) => {
            r.clock = clock;
            r.loc = here;
        }
        None => st.reads.push(CellAccess {
            tid: c.tid,
            clock,
            loc: here,
        }),
    }
}

#[track_caller]
pub(crate) fn cell_write(state: &Mutex<CellState>) {
    let Some(c) = ctx() else { return };
    if std::thread::panicking() {
        return;
    }
    let here = std::panic::Location::caller();
    let mut s = c.rt.lock();
    s.threads[c.tid].clock.bump(c.tid);
    let clock = s.threads[c.tid].clock.clone();
    drop(s);
    let mut st = state.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = &st.last_write {
        if w.tid != c.tid && !w.clock.leq(&clock) {
            let other = CellAccess {
                tid: w.tid,
                clock: w.clock.clone(),
                loc: w.loc,
            };
            drop(st);
            race_fail(&c, "write", here, &other);
        }
    }
    if let Some(r) = st
        .reads
        .iter()
        .find(|r| r.tid != c.tid && !r.clock.leq(&clock))
    {
        let other = CellAccess {
            tid: r.tid,
            clock: r.clock.clone(),
            loc: r.loc,
        };
        drop(st);
        race_fail(&c, "write", here, &other);
    }
    st.reads.clear();
    st.last_write = Some(CellAccess {
        tid: c.tid,
        clock,
        loc: here,
    });
}

// ---------------------------------------------------------------------------
// Threads (called from `crate::thread`)
// ---------------------------------------------------------------------------

pub(crate) fn mutation_active(name: &str) -> bool {
    match ctx() {
        Some(c) => c.rt.lock().mutations.contains(name),
        None => false,
    }
}

type BoxedBody = Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>;

fn run_thread(rt: Arc<Rt>, tid: usize, body: BoxedBody) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            rt: rt.clone(),
            tid,
        })
    });
    // Wait to be scheduled for the first time.
    let aborted_early = {
        let mut s = rt.lock();
        while s.current != tid && !s.aborted {
            s = rt.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.aborted
    };
    let mut result: Option<Box<dyn Any + Send>> = None;
    let mut panic_msg: Option<String> = None;
    if !aborted_early {
        match catch_unwind(AssertUnwindSafe(body)) {
            Ok(v) => result = Some(v),
            Err(payload) => {
                if !payload.is::<AbortToken>() {
                    panic_msg = Some(panic_message(&payload));
                }
            }
        }
    }
    let mut s = rt.lock();
    if let Some(msg) = panic_msg {
        s.record_failure(FailureKind::Panic, msg);
    }
    s.threads[tid].state = ThState::Finished;
    s.threads[tid].parked_at = None;
    s.threads[tid].result = result;
    for th in s.threads.iter_mut() {
        if th.state == ThState::BlockedJoin(tid) {
            th.state = ThState::Runnable;
        }
    }
    if s.threads.iter().all(|t| t.state == ThState::Finished) {
        s.complete = true;
    } else if !s.aborted && s.current == tid {
        match s.pick() {
            Ok(next) => s.current = next,
            Err(msg) => {
                s.record_failure(FailureKind::Deadlock, msg);
            }
        }
    }
    rt.cv.notify_all();
    CTX.with(|c| *c.borrow_mut() = None);
}

fn panic_message(payload: &Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

pub(crate) fn spawn_model_thread(body: BoxedBody) -> (Arc<Rt>, usize) {
    let c = ctx().expect("bgp_check::thread::spawn used outside a model run");
    schedule_point(PointKind::Op);
    let child = {
        let mut s = c.rt.lock();
        let tid = s.threads.len();
        assert!(
            tid < MAX_THREADS,
            "too many model threads ({MAX_THREADS} max)"
        );
        let parent = &mut s.threads[c.tid];
        parent.clock.bump(c.tid);
        let mut clock = parent.clock.clone();
        clock.bump(tid); // spawn edge: child starts after everything the parent did
        s.threads.push(Th::new(clock));
        tid
    };
    let rt2 = c.rt.clone();
    let handle = std::thread::Builder::new()
        .name(format!("bgp-check-{child}"))
        .spawn(move || run_thread(rt2, child, body))
        .expect("spawn model thread");
    c.rt.lock().os_handles.push(handle);
    (c.rt.clone(), child)
}

/// Poll-join on a model thread; returns its boxed result and establishes the
/// join happens-before edge.
pub(crate) fn join_model_thread(rt: &Arc<Rt>, child: usize) -> Box<dyn Any + Send> {
    let c = ctx().expect("join outside a model run");
    assert!(Arc::ptr_eq(rt, &c.rt), "join across model runs");
    loop {
        schedule_point(PointKind::Op);
        let mut s = c.rt.lock();
        if s.threads[child].state == ThState::Finished {
            let child_clock = s.threads[child].clock.clone();
            s.threads[c.tid].clock.join(&child_clock);
            let result = s.threads[child].result.take();
            drop(s);
            return result.unwrap_or_else(|| {
                // The child panicked (its failure is already recorded);
                // unwind this thread too.
                abort_panic()
            });
        }
        // Block until the child finishes.
        s.threads[c.tid].state = ThState::BlockedJoin(child);
        match s.pick() {
            Ok(next) => s.current = next,
            Err(msg) => {
                s.record_failure(FailureKind::Deadlock, msg);
                c.rt.cv.notify_all();
                drop(s);
                abort_panic();
            }
        }
        c.rt.cv.notify_all();
        while s.current != c.tid && !s.aborted {
            s = c.rt.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if s.aborted {
            drop(s);
            abort_panic();
        }
    }
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

/// What went wrong on a failing schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// An assertion (oracle) in the test closure panicked.
    Panic,
    /// Two unordered accesses to a model `UnsafeCell`.
    Race,
    /// Every live thread was spin-parked or join-blocked.
    Deadlock,
    /// The per-execution step budget ran out (livelock or runaway loop).
    StepLimit,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureKind::Panic => "oracle panic",
            FailureKind::Race => "data race",
            FailureKind::Deadlock => "deadlock",
            FailureKind::StepLimit => "step-budget livelock",
        })
    }
}

/// A failing schedule: what happened plus everything needed to replay it
/// deterministically.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    pub message: String,
    /// The full choice trace of the failing execution.
    pub trace: Vec<u16>,
    /// Which explored schedule failed (0-based).
    pub schedule: usize,
    /// The base seed, in random mode.
    pub seed: Option<u64>,
}

impl Failure {
    /// The trace as the comma-separated form `BGP_CHECK_REPLAY` accepts.
    pub fn trace_csv(&self) -> String {
        self.trace
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The environment assignment that replays this exact schedule.
    pub fn replay_env(&self) -> String {
        format!("BGP_CHECK_REPLAY={}", self.trace_csv())
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}", self.kind, self.message)?;
        writeln!(f, "  failing schedule #{}", self.schedule)?;
        if let Some(seed) = self.seed {
            writeln!(f, "  random mode base seed: {seed}")?;
        }
        writeln!(f, "  trace: [{}]", self.trace_csv())?;
        write!(
            f,
            "  replay deterministically with {} or Config::replay(&[...])",
            self.replay_env()
        )
    }
}

/// Exploration strategy and budgets for one [`explore`]/[`model_with`] call.
#[derive(Debug, Clone)]
pub struct Config {
    mode: Mode,
    max_steps: u64,
    mutations: Vec<String>,
}

#[derive(Debug, Clone)]
enum Mode {
    Dfs { max_schedules: usize },
    Random { seed: u64, iterations: usize },
    Replay { trace: Vec<u16> },
}

impl Config {
    /// Bounded exhaustive depth-first search over the schedule tree,
    /// stopping after `max_schedules` executions if the tree is larger.
    pub fn dfs(max_schedules: usize) -> Self {
        Config {
            mode: Mode::Dfs { max_schedules },
            max_steps: 50_000,
            mutations: Vec::new(),
        }
    }

    /// `iterations` independent schedules sampled from a deterministic
    /// seed-derived stream; any failure reports a trace that replays.
    pub fn random(seed: u64, iterations: usize) -> Self {
        Config {
            mode: Mode::Random { seed, iterations },
            max_steps: 50_000,
            mutations: Vec::new(),
        }
    }

    /// Re-run exactly one schedule from a recorded choice trace.
    pub fn replay(trace: &[u16]) -> Self {
        Config {
            mode: Mode::Replay {
                trace: trace.to_vec(),
            },
            max_steps: 50_000,
            mutations: Vec::new(),
        }
    }

    /// Override the per-execution scheduling-point budget.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Activate a named seeded bug (see `bgp_shmem`'s mutation points) for
    /// every execution of this run — the checker's self-test hook.
    pub fn mutate(mut self, name: &str) -> Self {
        self.mutations.push(name.to_string());
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::dfs(4096)
    }
}

/// The outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Executions actually run.
    pub schedules: usize,
    /// The first failing schedule, if any.
    pub failure: Option<Failure>,
}

fn run_once(
    cfg: &Config,
    plan: Vec<u16>,
    rng: Option<SplitMix64>,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> (Vec<(u16, u16)>, Option<Failure>) {
    let rt = Arc::new(Rt::new(cfg, plan, rng));
    rt.lock().threads.push(Th::new({
        let mut c = VClock::new();
        c.bump(0);
        c
    }));
    let rt2 = rt.clone();
    let fc = f.clone();
    let body: BoxedBody = Box::new(move || {
        fc();
        Box::new(()) as Box<dyn Any + Send>
    });
    let handle = std::thread::Builder::new()
        .name("bgp-check-0".to_string())
        .spawn(move || run_thread(rt2, 0, body))
        .expect("spawn model root thread");
    let (handles, trace, failure) = {
        let mut s = rt.lock();
        s.os_handles.push(handle);
        while !s.complete {
            s = rt.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        (
            std::mem::take(&mut s.os_handles),
            std::mem::take(&mut s.trace),
            s.failure.take(),
        )
    };
    for h in handles {
        let _ = h.join();
    }
    (trace, failure)
}

/// Explore schedules of `f` under `cfg` and report the first failure (or
/// none). Setting `BGP_CHECK_REPLAY=<c,c,...>` in the environment overrides
/// `cfg` with a single-schedule replay — paste the trace from a failure
/// report to re-run it under a debugger or with extra logging.
pub fn explore<F>(cfg: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    install_panic_hook();
    let mode = match std::env::var("BGP_CHECK_REPLAY") {
        Ok(csv) if !csv.is_empty() => Mode::Replay {
            trace: csv
                .split(',')
                .map(|t| {
                    t.trim()
                        .parse::<u16>()
                        .expect("BGP_CHECK_REPLAY: bad trace")
                })
                .collect(),
        },
        _ => cfg.mode.clone(),
    };
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    match mode {
        Mode::Dfs { max_schedules } => {
            // `stack` is the DFS frontier: the (chosen, options) prefix of
            // the last execution, advanced odometer-style from the deepest
            // branch point that still has untried choices.
            let mut stack: Vec<(u16, u16)> = Vec::new();
            let mut schedules = 0usize;
            loop {
                let plan: Vec<u16> = stack.iter().map(|&(c, _)| c).collect();
                let (trace, failure) = run_once(&cfg, plan, None, &f);
                schedules += 1;
                if let Some(mut fl) = failure {
                    fl.schedule = schedules - 1;
                    return Report {
                        schedules,
                        failure: Some(fl),
                    };
                }
                if schedules >= max_schedules {
                    return Report {
                        schedules,
                        failure: None,
                    };
                }
                stack = trace;
                loop {
                    match stack.last_mut() {
                        None => {
                            return Report {
                                schedules,
                                failure: None,
                            }
                        }
                        Some(last) => {
                            if last.0 + 1 < last.1 {
                                last.0 += 1;
                                break;
                            }
                            stack.pop();
                        }
                    }
                }
            }
        }
        Mode::Random { seed, iterations } => {
            for i in 0..iterations {
                let rng = SplitMix64::new(
                    seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                let (_, failure) = run_once(&cfg, Vec::new(), Some(rng), &f);
                if let Some(mut fl) = failure {
                    fl.schedule = i;
                    fl.seed = Some(seed);
                    return Report {
                        schedules: i + 1,
                        failure: Some(fl),
                    };
                }
            }
            Report {
                schedules: iterations,
                failure: None,
            }
        }
        Mode::Replay { trace } => {
            let (_, failure) = run_once(&cfg, trace, None, &f);
            Report {
                schedules: 1,
                failure,
            }
        }
    }
}

/// [`explore`] with [`Config::default`] (bounded DFS), panicking on the
/// first failing schedule with its full replay information — the loom-style
/// entry point for model tests.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Config::default(), f)
}

/// [`model`] with an explicit [`Config`].
pub fn model_with<F>(cfg: Config, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore(cfg, f);
    if let Some(failure) = report.failure {
        panic!(
            "model check failed after exploring {} schedule(s)\n{}",
            report.schedules, failure
        );
    }
}
