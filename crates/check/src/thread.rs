//! Model threads: spawn/join plus the two scheduling hints.
//!
//! Model threads are real OS threads serialized by the runtime, so
//! thread-local state, panics, and `Send` bounds behave exactly as in
//! production code. `spawn` and `join` also carry the usual happens-before
//! edges (everything before `spawn` is visible to the child; everything the
//! child did is visible after `join`).

use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;

use crate::rt;

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    rt: Arc<rt::Rt>,
    tid: usize,
    _marker: PhantomData<T>,
}

impl<T: Send + 'static> JoinHandle<T> {
    /// Wait for the thread and take its result. If the thread panicked, its
    /// failure is already recorded by the checker and this unwinds too.
    pub fn join(self) -> T {
        let boxed = rt::join_model_thread(&self.rt, self.tid);
        *boxed
            .downcast::<T>()
            .expect("model thread result type mismatch")
    }
}

/// Spawn a model thread. Panics outside a model run: production code never
/// calls this (only model tests do), and silently falling back to free-running
/// OS threads would defeat the checker.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (rt, tid) = rt::spawn_model_thread(Box::new(move || Box::new(f()) as Box<dyn Any + Send>));
    JoinHandle {
        rt,
        tid,
        _marker: PhantomData,
    }
}

/// A plain scheduling point: lets the scheduler switch threads without
/// claiming the current thread is stuck.
pub fn yield_now() {
    if rt::ctx().is_some() {
        rt::schedule_point(rt::PointKind::Op);
    } else {
        std::thread::yield_now();
    }
}

/// A spin-wait scheduling point: tells the scheduler this thread is in a
/// read-only wait loop and need not be rescheduled until some other thread
/// performs a store. This is what makes bounded exhaustive exploration of
/// spin-based protocols terminate, and what turns a wait that no store can
/// satisfy into a reported deadlock instead of a hang.
pub fn spin() {
    if rt::ctx().is_some() {
        rt::schedule_point(rt::PointKind::Spin);
    } else {
        std::thread::yield_now();
    }
}
