//! Model atomics.
//!
//! Drop-in replacements for the `std::sync::atomic` types the shmem
//! primitives use. Inside a model run every operation is a scheduling point
//! and moves the vector clocks per its `Ordering` (see [`crate::rt`]).
//! Outside a model run the operations fall back to mutex-serialized direct
//! access — sequentially consistent, i.e. strictly stronger than anything
//! the caller asked for — so a crate compiled with its `model` feature still
//! behaves correctly when exercised by ordinary unit tests.

pub mod atomic {
    use std::sync::Mutex;

    use crate::rt::{op_cas, op_load, op_rmw, op_store, AtomicData};

    pub use crate::rt::Ordering;

    macro_rules! model_atomic_common {
        ($name:ident, $ty:ty) => {
            /// Model replacement for the `std` atomic of the same name.
            pub struct $name {
                data: Mutex<AtomicData<$ty>>,
            }

            impl $name {
                pub const fn new(value: $ty) -> Self {
                    $name {
                        data: Mutex::new(AtomicData::new(value)),
                    }
                }

                pub fn load(&self, order: Ordering) -> $ty {
                    op_load(&self.data, order)
                }

                pub fn store(&self, value: $ty, order: Ordering) {
                    op_store(&self.data, value, order)
                }

                pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                    op_rmw(&self.data, order, |_| value)
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    op_cas(&self.data, current, new, success, failure)
                }

                /// Modeled with strong semantics: spurious failures would
                /// only add schedules in which callers retry, and every
                /// caller in this workspace already loops.
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    op_cas(&self.data, current, new, success, failure)
                }

                pub fn get_mut(&mut self) -> &mut $ty {
                    &mut self.data.get_mut().unwrap_or_else(|e| e.into_inner()).value
                }

                pub fn into_inner(self) -> $ty {
                    self.data
                        .into_inner()
                        .unwrap_or_else(|e| e.into_inner())
                        .value
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    // Peek without a scheduling point: Debug formatting is
                    // diagnostics, not a modeled memory access.
                    let v = self.data.lock().unwrap_or_else(|e| e.into_inner()).value;
                    f.debug_tuple(stringify!($name)).field(&v).finish()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }
        };
    }

    macro_rules! model_atomic_int {
        ($name:ident, $ty:ty) => {
            model_atomic_common!($name, $ty);

            impl $name {
                pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                    op_rmw(&self.data, order, |v| v.wrapping_add(value))
                }

                pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                    op_rmw(&self.data, order, |v| v.wrapping_sub(value))
                }

                pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                    op_rmw(&self.data, order, |v| v.max(value))
                }
            }
        };
    }

    model_atomic_int!(AtomicUsize, usize);
    model_atomic_int!(AtomicU64, u64);
    model_atomic_int!(AtomicU32, u32);
    model_atomic_common!(AtomicBool, bool);

    impl AtomicBool {
        pub fn fetch_xor(&self, value: bool, order: Ordering) -> bool {
            op_rmw(&self.data, order, |v| v ^ value)
        }
    }
}
