//! # bgp-check — deterministic concurrency model checking, vendored
//!
//! The paper's contribution is a handful of lock-free shared-memory
//! protocols (the Bcast FIFO's fetch-and-increment slot reservation with
//! last-reader retirement, the Pt-to-Pt FIFO, the software message and
//! completion counters). Their correctness depends on *which* interleaving
//! the hardware happens to run and on the release/acquire edges the code
//! declares — exactly the failure modes schedule-blind stress tests miss.
//!
//! This crate is a small, dependency-free model checker in the style of
//! `loom` (which cannot be used here: the workspace builds offline with no
//! external crates). `bgp-shmem` compiles its primitives against a facade
//! (`bgp_shmem::sync::atomic`, `bgp_shmem::sync::cell`, `bgp_shmem::spin`)
//! that is a zero-cost re-export of `std` in normal builds and routes
//! through this crate under the `model` feature.
//!
//! ## How it works
//!
//! * **Cooperative serialization.** [`model`]/[`explore`] run a test closure
//!   on *model threads* (real OS threads, but exactly one runnable at a
//!   time). Every atomic access is a scheduling point: the running thread
//!   hands control to the scheduler, which picks the next thread to run.
//!   An execution is therefore fully determined by the sequence of picks —
//!   the **schedule** — and can be replayed exactly.
//! * **Exploration.** [`Config::dfs`] enumerates schedules by bounded
//!   exhaustive depth-first search over the choice tree (for small runs);
//!   [`Config::random`] samples seed-derived schedules (for larger ones).
//!   Both are deterministic: DFS by construction, random via a per-iteration
//!   SplitMix64 stream.
//! * **Happens-before tracking.** Threads, atomics, and model
//!   [`cell::UnsafeCell`]s carry vector clocks. `Release` stores publish the
//!   writer's clock on the location; `Acquire` loads join it. Accesses to a
//!   model `UnsafeCell` that are not ordered by happens-before are reported
//!   as data races *before* the access happens — so a missing `Release` (or
//!   a payload write hoisted past its publication) is caught even though the
//!   explored executions themselves are sequentially consistent.
//! * **Deadlock detection.** [`thread::spin`] marks a thread as parked on a
//!   spin-wait. A parked thread is not rescheduled until some other thread
//!   performs a store (spin loops in the shmem primitives are read-only, so
//!   re-running one before a store cannot make progress). If every live
//!   thread is parked with no store in sight, the schedule is a deadlock and
//!   is reported with its trace.
//!
//! ## Failure reports and replay
//!
//! Any failure — an oracle `assert!` in the test closure, a detected data
//! race, a deadlock, or a step-budget blowout — aborts the execution and is
//! reported as a [`Failure`] carrying the full choice trace (and the seed,
//! in random mode). `Failure::replay_env()` prints the exact environment
//! variable (`BGP_CHECK_REPLAY=<trace>`) that makes the next run of the same
//! test deterministically re-execute the failing schedule; [`Config::replay`]
//! does the same in code.
//!
//! ## Mutation self-tests
//!
//! A checker is only trustworthy if it *fails* on broken code. `bgp-shmem`
//! keeps named, compiled-out mutation points in the real primitives (skip
//! the `readers_left` initialisation, weaken a publication to `Relaxed`,
//! hoist a publication above the payload write, …). [`Config::mutate`]
//! activates one by name for a model run; the self-tests in
//! `crates/shmem/tests/model.rs` assert that every seeded bug is caught
//! within a bounded schedule budget and that the reported trace replays to
//! the same failure.

pub mod cell;
pub mod mutation;
mod rng;
mod rt;
pub mod sync;
pub mod thread;

pub use rt::{explore, model, model_with, Config, Failure, FailureKind, Report};
