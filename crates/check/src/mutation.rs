//! Named mutation probes — the checker's self-test hook.
//!
//! A model checker that never fails proves nothing; it must be shown to
//! *catch* known bugs. The primitives under test keep named mutation points
//! in their real code paths (e.g. skip an initialisation, weaken a store's
//! ordering). Each point asks [`active`] whether its bug is switched on;
//! the answer is `false` everywhere except in a model run whose
//! [`crate::Config::mutate`] listed the name, so mutations cost nothing and
//! change nothing in production builds — even with the `model` feature
//! compiled in.

use crate::rt;

/// Is the named seeded bug active in the current model run?
pub fn active(name: &str) -> bool {
    rt::mutation_active(name)
}
