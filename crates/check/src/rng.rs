//! SplitMix64 — the schedule-sampling PRNG.
//!
//! Chosen for the same reason the simulator vendors its own generator:
//! identical streams on every host and toolchain, so a seed printed in a
//! failure report replays the same schedule anywhere.

/// SplitMix64 (Steele, Lea, Flood 2014). Full 64-bit state, passes BigCrush,
/// two multiplications per draw.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (n >= 1) by rejection-free modulo; the tiny
    /// modulo bias is irrelevant for schedule sampling.
    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(3) < 3);
        }
    }
}
