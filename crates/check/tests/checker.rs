//! bgp-check self-tests on textbook scenarios: the checker must pass
//! correct protocols, catch broken ones, detect deadlock and livelock, and
//! replay any failure deterministically from its reported trace.

use std::sync::Arc;

use bgp_check::cell::UnsafeCell;
use bgp_check::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use bgp_check::thread;
use bgp_check::{explore, model, Config, FailureKind};

/// Release/acquire message passing is race-free under full DFS.
#[test]
fn correct_message_passing_passes() {
    model(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicUsize::new(0));
        let (c2, f2) = (cell.clone(), flag.clone());
        let t = thread::spawn(move || {
            unsafe { c2.with_mut(|p| *p = 42) };
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            unsafe { cell.with(|p| assert_eq!(*p, 42)) };
        }
        t.join();
    });
}

/// The same protocol with the publication weakened to `Relaxed` must be
/// reported as a data race on the payload cell.
#[test]
fn relaxed_publication_is_a_race() {
    let report = explore(Config::dfs(2_000), || {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicUsize::new(0));
        let (c2, f2) = (cell.clone(), flag.clone());
        let t = thread::spawn(move || {
            unsafe { c2.with_mut(|p| *p = 42) };
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 1 {
            unsafe { cell.with(|p| assert_eq!(*p, 42)) };
        }
        t.join();
    });
    let failure = report.failure.expect("DFS must find the race");
    assert_eq!(failure.kind, FailureKind::Race, "{failure}");
    assert!(failure.message.contains("data race"), "{failure}");
}

/// A non-atomic read-modify-write (load; add; store) loses updates under
/// some interleaving; DFS must find the one that breaks the oracle.
#[test]
fn lost_update_is_found_by_dfs() {
    let report = explore(Config::dfs(2_000), || {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    let v = n.load(Ordering::Acquire);
                    n.store(v + 1, Ordering::Release);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(n.load(Ordering::Acquire), 2, "lost update");
    });
    let failure = report.failure.expect("DFS must find the lost update");
    assert_eq!(failure.kind, FailureKind::Panic, "{failure}");
    assert!(failure.message.contains("lost update"), "{failure}");
}

/// The atomic version of the same counter is correct under full DFS.
#[test]
fn fetch_add_counter_passes() {
    model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::AcqRel);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(n.load(Ordering::Acquire), 2);
    });
}

/// A spin-wait no store can ever satisfy is reported as deadlock (with the
/// schedule), not run forever.
#[test]
fn hopeless_spin_is_deadlock() {
    let report = explore(Config::dfs(16), || {
        let flag = AtomicUsize::new(0);
        while flag.load(Ordering::Acquire) == 0 {
            thread::spin();
        }
    });
    let failure = report.failure.expect("must deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
}

/// A loop that keeps making scheduling points without parking burns the
/// step budget and is reported as livelock.
#[test]
fn runaway_loop_hits_step_limit() {
    let report = explore(Config::dfs(4).max_steps(200), || loop {
        thread::yield_now();
    });
    let failure = report.failure.expect("must hit the step budget");
    assert_eq!(failure.kind, FailureKind::StepLimit, "{failure}");
}

/// The trace in a failure report replays to the same failure, and the
/// failing execution is the first (and only) schedule of the replay run.
#[test]
fn failure_trace_replays_deterministically() {
    let scenario = || {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicUsize::new(0));
        let (c2, f2) = (cell.clone(), flag.clone());
        let t = thread::spawn(move || {
            unsafe { c2.with_mut(|p| *p = 7) };
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 1 {
            unsafe { cell.with(|p| assert_eq!(*p, 7)) };
        }
        t.join();
    };
    let first = explore(Config::dfs(2_000), scenario)
        .failure
        .expect("race expected");
    let replay = explore(Config::replay(&first.trace), scenario);
    assert_eq!(replay.schedules, 1);
    let second = replay.failure.expect("replay must reproduce the failure");
    assert_eq!(second.kind, first.kind);
    assert_eq!(second.trace, first.trace);
}

/// Random exploration is a pure function of the seed: same seed, same
/// failing schedule; and the failure report carries the seed.
#[test]
fn random_mode_is_seed_deterministic() {
    let scenario = || {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    let v = n.load(Ordering::Acquire);
                    n.store(v + 1, Ordering::Release);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(n.load(Ordering::Acquire), 2);
    };
    let a = explore(Config::random(0xB1_4E, 500), scenario)
        .failure
        .expect("random mode must find the lost update");
    let b = explore(Config::random(0xB1_4E, 500), scenario)
        .failure
        .expect("same seed, same result");
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.seed, Some(0xB1_4E));
    // And the reported trace replays on its own.
    let replayed = explore(Config::replay(&a.trace), scenario)
        .failure
        .expect("replay of a random-mode failure");
    assert_eq!(replayed.trace, a.trace);
}

/// compare_exchange: exactly one of two racing CAS attempts wins under
/// every schedule.
#[test]
fn cas_single_winner() {
    model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (n, wins) = (n.clone(), wins.clone());
                thread::spawn(move || {
                    if n.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        wins.fetch_add(1, Ordering::AcqRel);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(wins.load(Ordering::Acquire), 1);
        assert_eq!(n.load(Ordering::Acquire), 1);
    });
}

/// Model atomics fall back to plain (mutex-serialized) behavior outside a
/// model run, so `model`-feature builds still work under ordinary tests.
#[test]
fn atomics_work_outside_model_runs() {
    let n = AtomicU64::new(5);
    assert_eq!(n.fetch_add(3, Ordering::AcqRel), 5);
    assert_eq!(n.load(Ordering::Acquire), 8);
    assert_eq!(
        n.compare_exchange(8, 1, Ordering::AcqRel, Ordering::Acquire),
        Ok(8)
    );
    let cell = UnsafeCell::new(11u32);
    unsafe {
        cell.with_mut(|p| *p += 1);
        assert_eq!(cell.with(|p| *p), 12);
    }
    thread::spin();
    thread::yield_now();
}
