//! The `BGP_CHECK_REPLAY` environment override, end to end.
//!
//! Kept in its own test binary with a single test: the override is
//! process-global, so it must not run concurrently with other
//! explorations.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bgp_check::sync::atomic::AtomicU64;
use bgp_check::{explore, thread, Config, FailureKind};

fn racy_scenario() {
    let flag = Arc::new(AtomicU64::new(0));
    let data = Arc::new(bgp_check::cell::UnsafeCell::new(0u64));
    let producer = {
        let (flag, data) = (flag.clone(), data.clone());
        thread::spawn(move || {
            unsafe { data.with_mut(|p| *p = 1) };
            // BUG (deliberate): relaxed publication.
            flag.store(1, Ordering::Relaxed);
        })
    };
    if flag.load(Ordering::Acquire) == 1 {
        unsafe { data.with(|p| assert_eq!(*p, 1)) };
    }
    producer.join();
}

#[test]
fn replay_env_var_overrides_exploration() {
    // First find a failing schedule normally.
    let report = explore(Config::dfs(1_000), racy_scenario);
    let failure = report.failure.expect("the race must be found");
    assert_eq!(failure.kind, FailureKind::Race);

    // Then replay it the way the failure report tells a human to: via the
    // environment variable, with an arbitrary (here: DFS) config that the
    // override must win over.
    std::env::set_var("BGP_CHECK_REPLAY", failure.trace_csv());
    let replayed = explore(Config::dfs(1_000), racy_scenario);
    std::env::remove_var("BGP_CHECK_REPLAY");

    assert_eq!(replayed.schedules, 1, "override must run exactly one plan");
    let f = replayed.failure.expect("replay reproduces the race");
    assert_eq!(f.kind, failure.kind);
    assert_eq!(f.trace, failure.trace);
}
