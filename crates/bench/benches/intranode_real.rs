//! Criterion benches of the REAL intra-node collectives: four rank-threads
//! moving actual bytes through the `bgp-shmem` primitives (no simulation).
//!
//! The interesting comparison mirrors the paper's intra-node argument:
//! staged shared memory (two copies) vs the Bcast FIFO (two copies + slot
//! protocol) vs shared-address message counters (one copy). On a host with
//! few cores the absolute numbers are host-specific; the *ordering* is the
//! paper's.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bgp_smp::collectives::{read_f64s, write_f64s};
use bgp_smp::run_node;

const LEN: usize = 256 * 1024;
const RANKS: usize = 4;

fn bench_intranode_bcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("intranode_real_bcast");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((LEN * (RANKS - 1)) as u64));

    g.bench_function("shmem_staged_256K", |b| {
        b.iter(|| {
            run_node(RANKS, |mut ctx| {
                let buf = ctx.alloc_buffer(LEN);
                if ctx.rank() == 0 {
                    unsafe { buf.write(0, &[7u8; LEN]) };
                }
                ctx.barrier();
                ctx.bcast_shmem(0, &buf, LEN);
                black_box(())
            });
        })
    });

    g.bench_function("bcast_fifo_256K", |b| {
        b.iter(|| {
            run_node(RANKS, |mut ctx| {
                let buf = ctx.alloc_buffer(LEN);
                if ctx.rank() == 0 {
                    unsafe { buf.write(0, &[7u8; LEN]) };
                }
                ctx.barrier();
                ctx.bcast_fifo(0, &buf, LEN, 0);
                black_box(())
            });
        })
    });

    g.bench_function("shaddr_counters_256K", |b| {
        b.iter(|| {
            run_node(RANKS, |mut ctx| {
                let buf = ctx.alloc_buffer(LEN);
                if ctx.rank() == 0 {
                    unsafe { buf.write(0, &[7u8; LEN]) };
                }
                ctx.barrier();
                ctx.bcast_shaddr(0, &buf, LEN, 16 * 1024);
                black_box(())
            });
        })
    });
    g.finish();
}

/// §IV-A's claim, measured: the fetch-and-increment Bcast FIFO vs the
/// mutex-per-operation strawman, 1 producer / 3 consumers.
fn bench_fifo_vs_mutex(c: &mut Criterion) {
    use bgp_shmem::{BcastFifo, MutexBcastFifo};
    const MSGS: u64 = 2_000;
    let mut g = c.benchmark_group("fifo_vs_mutex");
    g.sample_size(10);
    g.throughput(Throughput::Elements(MSGS));

    g.bench_function("atomic_faa_fifo", |b| {
        b.iter(|| {
            let (fifo, mut consumers) = BcastFifo::with_consumers(64, 3);
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..MSGS {
                        fifo.enqueue(i);
                    }
                });
                for c in consumers.iter_mut() {
                    s.spawn(move || {
                        let mut sum = 0u64;
                        for _ in 0..MSGS {
                            sum += c.recv();
                        }
                        black_box(sum)
                    });
                }
            });
        })
    });

    g.bench_function("mutex_fifo", |b| {
        b.iter(|| {
            let (fifo, mut consumers) = MutexBcastFifo::with_consumers(64, 3);
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..MSGS {
                        fifo.enqueue(i);
                    }
                });
                for c in consumers.iter_mut() {
                    s.spawn(move || {
                        let mut sum = 0u64;
                        for _ in 0..MSGS {
                            sum += c.recv();
                        }
                        black_box(sum)
                    });
                }
            });
        })
    });
    g.finish();
}

fn bench_intranode_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("intranode_real_allreduce");
    g.sample_size(10);
    const COUNT: usize = 16 * 1024;
    g.throughput(Throughput::Bytes((COUNT * 8) as u64));
    g.bench_function("allreduce_f64_16K", |b| {
        b.iter(|| {
            let out = run_node(RANKS, |mut ctx| {
                let input = ctx.alloc_buffer(COUNT * 8);
                let output = ctx.alloc_buffer(COUNT * 8);
                write_f64s(&input, 0, &vec![ctx.rank() as f64; COUNT]);
                ctx.barrier();
                ctx.allreduce_f64(&input, &output, COUNT);
                read_f64s(&output, 0, 1)[0]
            });
            black_box(out)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_intranode_bcast, bench_fifo_vs_mutex, bench_intranode_allreduce);
criterion_main!(benches);
