//! Plain-harness benches of the REAL intra-node collectives: four
//! rank-threads moving actual bytes through the `bgp-shmem` primitives (no
//! simulation).
//!
//! The interesting comparison mirrors the paper's intra-node argument:
//! staged shared memory (two copies) vs the Bcast FIFO (two copies + slot
//! protocol) vs shared-address message counters (one copy). On a host with
//! few cores the absolute numbers are host-specific; the *ordering* is the
//! paper's.

use std::hint::black_box;

use bgp_bench::harness::bench_case;
use bgp_smp::collectives::{read_f64s, write_f64s};
use bgp_smp::NodeRuntime;

const LEN: usize = 256 * 1024;
const RANKS: usize = 4;

fn main() {
    println!("intranode_real: wall-time of the threaded intra-node collectives");

    // One persistent rank-team for the whole bench: iterations measure the
    // collectives, not thread spawn + node construction.
    let rt = NodeRuntime::new(RANKS);

    // The three broadcast data paths.
    bench_case("bcast/shmem_staged_256K", 10, || {
        rt.run(|ctx| {
            let buf = ctx.alloc_buffer(LEN);
            if ctx.rank() == 0 {
                unsafe { buf.write(0, &[7u8; LEN]) };
            }
            ctx.barrier();
            ctx.bcast_shmem(0, &buf, LEN);
            black_box(())
        });
    });
    bench_case("bcast/bcast_fifo_256K", 10, || {
        rt.run(|ctx| {
            let buf = ctx.alloc_buffer(LEN);
            if ctx.rank() == 0 {
                unsafe { buf.write(0, &[7u8; LEN]) };
            }
            ctx.barrier();
            ctx.bcast_fifo(0, &buf, LEN, 0);
            black_box(())
        });
    });
    bench_case("bcast/shaddr_counters_256K", 10, || {
        rt.run(|ctx| {
            let buf = ctx.alloc_buffer(LEN);
            if ctx.rank() == 0 {
                unsafe { buf.write(0, &[7u8; LEN]) };
            }
            ctx.barrier();
            ctx.bcast_shaddr(0, &buf, LEN, 16 * 1024);
            black_box(())
        });
    });

    // §IV-A's claim, measured: the fetch-and-increment Bcast FIFO vs the
    // mutex-per-operation strawman, 1 producer / 3 consumers.
    {
        use bgp_shmem::{BcastFifo, MutexBcastFifo};
        const MSGS: u64 = 2_000;
        bench_case("fifo_vs_mutex/atomic_faa_fifo", 10, || {
            let (fifo, mut consumers) = BcastFifo::with_consumers(64, 3);
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..MSGS {
                        fifo.enqueue(i);
                    }
                });
                for c in consumers.iter_mut() {
                    s.spawn(move || {
                        let mut sum = 0u64;
                        for _ in 0..MSGS {
                            sum += c.recv();
                        }
                        black_box(sum)
                    });
                }
            });
        });
        bench_case("fifo_vs_mutex/mutex_fifo", 10, || {
            let (fifo, mut consumers) = MutexBcastFifo::with_consumers(64, 3);
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..MSGS {
                        fifo.enqueue(i);
                    }
                });
                for c in consumers.iter_mut() {
                    s.spawn(move || {
                        let mut sum = 0u64;
                        for _ in 0..MSGS {
                            sum += c.recv();
                        }
                        black_box(sum)
                    });
                }
            });
        });
    }

    {
        const COUNT: usize = 16 * 1024;
        bench_case("allreduce/allreduce_f64_16K", 10, || {
            let out = rt.run(|ctx| {
                let input = ctx.alloc_buffer(COUNT * 8);
                let output = ctx.alloc_buffer(COUNT * 8);
                write_f64s(&input, 0, &vec![ctx.rank() as f64; COUNT]);
                ctx.barrier();
                ctx.allreduce_f64(&input, &output, COUNT);
                read_f64s(&output, 0, 1)[0]
            });
            black_box(out);
        });
    }
}
