//! Plain-harness benches: one representative simulated point per paper
//! experiment, at Small scale (64 nodes) so `cargo bench` completes in
//! minutes. The full-scale sweeps are the `fig*`/`table1` binaries.
//!
//! These measure the *simulator's* wall time; the simulated (paper-facing)
//! numbers are printed by the binaries and recorded in EXPERIMENTS.md.
//! No external bench harness: each case runs a fixed warmup + N timed
//! iterations and prints the median and spread.

use std::hint::black_box;

use bgp_machine::{MachineConfig, OpMode};
use bgp_mpi::allreduce::{throughput_mb, AllreduceAlgorithm};
use bgp_mpi::{BcastAlgorithm, Mpi};

use bgp_bench::harness::bench_case;

fn quad() -> Mpi {
    Mpi::new(MachineConfig::with_nodes(64, OpMode::Quad))
}

fn smp() -> Mpi {
    Mpi::new(MachineConfig::with_nodes(64, OpMode::Smp))
}

fn main() {
    println!("figures_sim: simulator wall-time per operation (median of samples)");

    let mut q = quad();
    bench_case("fig6/tree_shmem_64B", 20, || {
        black_box(q.bcast(BcastAlgorithm::TreeShmem, 64));
    });
    let mut s = smp();
    bench_case("fig6/tree_smp_64B", 20, || {
        black_box(s.bcast(BcastAlgorithm::TreeSmp, 64));
    });

    let mut q = quad();
    bench_case("fig7/tree_shaddr_128K", 20, || {
        black_box(q.bcast(BcastAlgorithm::TreeShaddr { caching: true }, 128 << 10));
    });
    bench_case("fig7/tree_dma_direct_put_128K", 20, || {
        black_box(q.bcast(BcastAlgorithm::TreeDmaDirectPut, 128 << 10));
    });

    bench_case("fig8/tree_shaddr_nocaching_64K", 20, || {
        black_box(q.bcast(BcastAlgorithm::TreeShaddr { caching: false }, 64 << 10));
    });

    for nodes in [64u32, 256] {
        let mut m = Mpi::new(MachineConfig::with_nodes(nodes, OpMode::Quad));
        bench_case(
            &format!("fig9/tree_shaddr_1M_{}procs", nodes * 4),
            10,
            || {
                black_box(m.bcast(BcastAlgorithm::TreeShaddr { caching: true }, 1 << 20));
            },
        );
    }

    let mut q = quad();
    bench_case("fig10/torus_shaddr_2M", 10, || {
        black_box(q.bcast(BcastAlgorithm::TorusShaddr, 2 << 20));
    });
    bench_case("fig10/torus_fifo_2M", 10, || {
        black_box(q.bcast(BcastAlgorithm::TorusFifo, 2 << 20));
    });
    bench_case("fig10/torus_direct_put_2M", 10, || {
        black_box(q.bcast(BcastAlgorithm::TorusDirectPut, 2 << 20));
    });

    let cfg = MachineConfig::with_nodes(64, OpMode::Quad);
    bench_case("table1/allreduce_new_512K_doubles", 20, || {
        let mut m = bgp_dcmf::Machine::new(cfg.clone());
        black_box(throughput_mb(
            &mut m,
            AllreduceAlgorithm::ShaddrSpecialized,
            512 << 10,
        ));
    });
    bench_case("table1/allreduce_current_512K_doubles", 20, || {
        let mut m = bgp_dcmf::Machine::new(cfg.clone());
        black_box(throughput_mb(
            &mut m,
            AllreduceAlgorithm::RingCurrent,
            512 << 10,
        ));
    });
}
