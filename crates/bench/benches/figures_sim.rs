//! Criterion benches: one representative simulated point per paper
//! experiment, at Small scale (64 nodes) so `cargo bench` completes in
//! minutes. The full-scale sweeps are the `fig*`/`table1` binaries.
//!
//! These measure the *simulator's* wall time; the simulated (paper-facing)
//! numbers are printed by the binaries and recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bgp_machine::{MachineConfig, OpMode};
use bgp_mpi::allreduce::{throughput_mb, AllreduceAlgorithm};
use bgp_mpi::{BcastAlgorithm, Mpi};

fn quad() -> Mpi {
    Mpi::new(MachineConfig::with_nodes(64, OpMode::Quad))
}

fn smp() -> Mpi {
    Mpi::new(MachineConfig::with_nodes(64, OpMode::Smp))
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_tree_latency");
    g.sample_size(20);
    let mut q = quad();
    g.bench_function("tree_shmem_64B", |b| {
        b.iter(|| black_box(q.bcast(BcastAlgorithm::TreeShmem, 64)))
    });
    let mut s = smp();
    g.bench_function("tree_smp_64B", |b| {
        b.iter(|| black_box(s.bcast(BcastAlgorithm::TreeSmp, 64)))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_tree_bw");
    g.sample_size(20);
    let mut q = quad();
    g.bench_function("tree_shaddr_128K", |b| {
        b.iter(|| black_box(q.bcast(BcastAlgorithm::TreeShaddr { caching: true }, 128 << 10)))
    });
    g.bench_function("tree_dma_direct_put_128K", |b| {
        b.iter(|| black_box(q.bcast(BcastAlgorithm::TreeDmaDirectPut, 128 << 10)))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_syscall");
    g.sample_size(20);
    let mut q = quad();
    g.bench_function("tree_shaddr_nocaching_64K", |b| {
        b.iter(|| black_box(q.bcast(BcastAlgorithm::TreeShaddr { caching: false }, 64 << 10)))
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_scaling");
    g.sample_size(10);
    for nodes in [64u32, 256] {
        let mut m = Mpi::new(MachineConfig::with_nodes(nodes, OpMode::Quad));
        g.bench_function(format!("tree_shaddr_1M_{}procs", nodes * 4), |b| {
            b.iter(|| black_box(m.bcast(BcastAlgorithm::TreeShaddr { caching: true }, 1 << 20)))
        });
    }
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_torus_bw");
    g.sample_size(10);
    let mut q = quad();
    g.bench_function("torus_shaddr_2M", |b| {
        b.iter(|| black_box(q.bcast(BcastAlgorithm::TorusShaddr, 2 << 20)))
    });
    g.bench_function("torus_fifo_2M", |b| {
        b.iter(|| black_box(q.bcast(BcastAlgorithm::TorusFifo, 2 << 20)))
    });
    g.bench_function("torus_direct_put_2M", |b| {
        b.iter(|| black_box(q.bcast(BcastAlgorithm::TorusDirectPut, 2 << 20)))
    });
    g.finish();
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_allreduce");
    g.sample_size(20);
    let cfg = MachineConfig::with_nodes(64, OpMode::Quad);
    g.bench_function("allreduce_new_512K_doubles", |b| {
        b.iter(|| {
            let mut m = bgp_dcmf::Machine::new(cfg.clone());
            black_box(throughput_mb(
                &mut m,
                AllreduceAlgorithm::ShaddrSpecialized,
                512 << 10,
            ))
        })
    });
    g.bench_function("allreduce_current_512K_doubles", |b| {
        b.iter(|| {
            let mut m = bgp_dcmf::Machine::new(cfg.clone());
            black_box(throughput_mb(&mut m, AllreduceAlgorithm::RingCurrent, 512 << 10))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_table1
);
criterion_main!(benches);
