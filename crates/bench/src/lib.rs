//! # bgp-bench — regenerate every table and figure of the paper
//!
//! One function per experiment ([`figures`]), a common result format
//! ([`report`]), and runnable binaries (`src/bin/fig6.rs` … `table1.rs`,
//! plus the ablations) that print the measured series next to the paper's
//! anchor numbers. Plain-harness wall-time benches live in `benches/`.
//!
//! Everything runs at two scales:
//!
//! * [`Scale::Paper`] — the evaluation system (two racks, 2048 nodes, 8192
//!   processes in quad mode). Use `--release`.
//! * [`Scale::Small`] — a 64-node 4×4×4 partition for quick runs and tests;
//!   every qualitative shape survives the down-scale (tree depth and ring
//!   fill shrink, so absolute latencies differ).

pub mod figures;
pub mod harness;
pub mod report;
pub mod trace;

pub use report::{Figure, Row};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Two racks: 2048 nodes / 8192 quad-mode ranks (the paper's system).
    Paper,
    /// 64 nodes (4x4x4) for fast runs.
    Small,
}

impl Scale {
    /// Nodes in the partition at this scale.
    pub fn nodes(self) -> u32 {
        match self {
            Scale::Paper => 2048,
            Scale::Small => 64,
        }
    }

    /// Parse from argv: `--small` selects [`Scale::Small`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--small") {
            Scale::Small
        } else {
            Scale::Paper
        }
    }
}
