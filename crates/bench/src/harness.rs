//! Minimal shared timing harness for the plain (`harness = false`) benches.
//!
//! Deliberately simple: fixed warmup, fixed sample count, median + min/max.
//! Medians are robust enough for trend tracking in EXPERIMENTS.md without
//! pulling a statistics framework into the hermetic build.

use std::time::Instant;

/// Run `f` `samples` times (after `samples/4 + 1` warmup runs) and print
/// `name: median [min .. max]` in microseconds.
pub fn bench_case(name: &str, samples: usize, f: impl FnMut()) {
    bench_case_median(name, samples, f);
}

/// Like [`bench_case`], but also returns the median (µs) for callers that
/// compare cases (e.g. `cluster_real --check`).
pub fn bench_case_median(name: &str, samples: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..samples / 4 + 1 {
        f();
    }
    let mut times_us: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times_us[times_us.len() / 2];
    println!(
        "{name:<45} {median:>12.2} us  [{:.2} .. {:.2}]",
        times_us.first().unwrap(),
        times_us.last().unwrap()
    );
    median
}
