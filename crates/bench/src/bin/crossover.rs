//! The algorithm-selection crossover exhibit. `--small` for 64 nodes.
//!
//! Prints the per-path latency sweep (measured through the shared
//! `bgp_tune::sweep` engine) plus a summary of where the *tuned* table
//! places the selection crossovers versus the static §V thresholds.

use bgp_bench::{figures, Scale};
use bgp_machine::{MachineConfig, OpMode};
use bgp_mpi::select::{SHORT_MSG_BYTES, TREE_TORUS_CROSSOVER_BYTES};
use bgp_mpi::tune::{alg_id, SelectionPolicy};

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 && b.is_multiple_of(1 << 20) {
        format!("{}M", b >> 20)
    } else if b >= 1 << 10 && b.is_multiple_of(1 << 10) {
        format!("{}K", b >> 10)
    } else {
        format!("{b}")
    }
}

fn main() {
    let scale = Scale::from_args();
    figures::crossover(scale).print();

    let cfg = MachineConfig::with_nodes(scale.nodes(), OpMode::Quad);
    let policy = SelectionPolicy::from_env();
    if let Some(w) = policy.warning() {
        println!("warning: {w}");
    }
    let Some(entry) = policy.table().and_then(|t| t.entry_for(&cfg)) else {
        println!(
            "no tuning-table entry for this shape; selection is static (crossovers {} / {})",
            fmt_bytes(SHORT_MSG_BYTES),
            fmt_bytes(TREE_TORUS_CROSSOVER_BYTES)
        );
        return;
    };
    println!(
        "tuned vs static crossovers ({:?}, {} nodes, table entry {:?} x {}):",
        cfg.mode,
        cfg.node_count(),
        entry.mode,
        entry.nodes
    );
    let static_bounds = [SHORT_MSG_BYTES, TREE_TORUS_CROSSOVER_BYTES];
    for (i, r) in entry.regions.iter().enumerate() {
        let tuned = match r.upto {
            Some(b) => fmt_bytes(b),
            None => "inf".into(),
        };
        let delta = match (r.upto, static_bounds.get(i)) {
            (Some(t), Some(&s)) if t == s => " (same as static)".to_string(),
            (Some(t), Some(&s)) => format!(
                " (static {}, {:+.0}%)",
                fmt_bytes(s),
                (t as f64 - s as f64) / s as f64 * 100.0
            ),
            _ => String::new(),
        };
        println!(
            "  {:<20} up to {:>6}{delta}  confidence {:.0}%",
            alg_id(r.alg),
            tuned,
            r.confidence * 100.0
        );
    }
}
