//! The algorithm-selection crossover exhibit. `--small` for 64 nodes.
use bgp_bench::{figures, Scale};

fn main() {
    figures::crossover(Scale::from_args()).print();
}
