//! Classic pt2pt ping-pong sweep: half round-trip latency and bandwidth,
//! showing the eager/rendezvous protocol switch.
use bgp_dcmf::{pt2pt, Machine};
use bgp_machine::MachineConfig;

fn main() {
    println!(
        "{:>10} {:>14} {:>12} {:>12}",
        "bytes", "half-RTT", "MB/s", "protocol"
    );
    let mut bytes = 1u64;
    while bytes <= 4 << 20 {
        let mut m = Machine::new(MachineConfig::two_racks_quad());
        let half = pt2pt::pingpong_half_rtt(&mut m, bytes);
        let bw = bytes as f64 / half.as_secs_f64() / 1e6;
        let proto = if bytes <= pt2pt::EAGER_LIMIT {
            "eager"
        } else {
            "rendezvous"
        };
        println!(
            "{:>10} {:>14} {:>12.1} {:>12}",
            bytes,
            half.to_string(),
            bw,
            proto
        );
        bytes *= 4;
    }
}
