//! svc_soak — multi-tenant soak harness for the `bgp-svc` service layer.
//!
//! Hundreds of sessions on real threads drive seeded mixed
//! bcast/allreduce trains against one shared [`Service`], in three
//! phases:
//!
//! 1. **solo** — the victim tenant runs its closed-loop train alone:
//!    baseline p50/p99/p999 per-op latency.
//! 2. **fairness** — `T` equal-weight tenants × `S` sessions each run the
//!    same train shape concurrently; per-tenant throughput feeds a Jain
//!    fairness index.
//! 3. **flood** — the victim repeats its solo train while a flooding
//!    tenant submits open-loop (`try_bcast`, ~10× the victim's rate) the
//!    whole time; isolation means the victim's p99 stays near solo.
//!
//! `--check` asserts payload correctness on every op plus the two
//! acceptance bounds: Jain ≥ 0.9 across the equal-weight tenants and
//! flood p99 ≤ 2× solo p99. Usage:
//!
//! ```text
//! svc_soak [--small] [--check] [--json FILE]
//!   --small   2 nodes × 2 ranks, 3 tenants × 2 sessions (CI smoke shape);
//!             default 2 × 4 with 8 tenants × 32 sessions (256 sessions)
//!   --check   verify payloads and assert the fairness/isolation bounds
//!   --json    write the per-tenant latency/fairness report to FILE
//! ```
//!
//! All numbers are host wall time — never gated; `bench_gate --with-real`
//! records the condensed `svc/soak_ops_per_s` and `svc/fairness_jain`
//! series for trend-reading.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bgp_sched::ServerConfig;
use bgp_sim::rng::Rng;
use bgp_svc::metrics::{jain_index, summarize, LatencySummary};
use bgp_svc::{Comm, Service, SvcError};

struct Shape {
    nodes: usize,
    ranks: usize,
    /// Equal-weight tenants in the fairness phase.
    tenants: usize,
    /// Sessions (threads) per tenant.
    sessions: usize,
    /// Closed-loop ops per session.
    ops_per_session: usize,
    /// Victim ops in the solo and flood phases.
    victim_ops: usize,
}

const SMALL: Shape = Shape {
    nodes: 2,
    ranks: 2,
    tenants: 3,
    sessions: 2,
    ops_per_session: 24,
    victim_ops: 200,
};

/// Sub-runs per latency phase. Latency on a shared host is a floor-bounded
/// distribution — interference (descheduling, sibling load) only inflates
/// it — so the minimum p99 across repeated sub-runs estimates the true
/// quantile where any single run's p99 may be an interference artifact.
/// Both sides of the isolation ratio use the same estimator, and each
/// sub-run is sized so its nearest-rank p99 sits below the sample max.
const SUB_RUNS: usize = 8;

/// Soak-service tuning: a latency-sensitive op waits behind at most
/// `pipeline * batch_max_ops` foreign ops, so the soak trades pipeline
/// depth and batch width for a bounded tail — small batches, no
/// speculative second job in flight. This is what keeps the flood-phase
/// p99 near solo while DRR keeps the aggregate fair.
fn soak_config() -> ServerConfig {
    ServerConfig {
        batch_max_ops: 1,
        pipeline: 1,
        ..ServerConfig::default()
    }
}

const FULL: Shape = Shape {
    nodes: 2,
    ranks: 4,
    tenants: 8,
    sessions: 32,
    ops_per_session: 24,
    victim_ops: 200,
};

/// Robust latency estimate over [`SUB_RUNS`] repeated trains: the merged
/// summary for reporting plus the minimum per-sub-run p99, which is what
/// the isolation check compares (see [`SUB_RUNS`]).
fn robust_summary(label: &str, mut trains: Vec<Vec<u64>>) -> (LatencySummary, u64) {
    let sub_p99s: Vec<u64> = trains.iter_mut().map(|t| summarize(t).p99_ns).collect();
    let robust_p99 = *sub_p99s.iter().min().expect("at least one sub-run");
    println!(
        "{label}: sub-run p99s {:?} us",
        sub_p99s.iter().map(|n| n / 1000).collect::<Vec<_>>()
    );
    let mut merged: Vec<u64> = trains.into_iter().flatten().collect();
    (summarize(&mut merged), robust_p99)
}

/// One closed-loop op: seeded small bcast or allreduce, submitted and
/// waited; returns the latency (ns). Verifies the payload when `check`.
fn one_op(comm: &Comm, rng: &mut Rng, nodes: usize, check: bool) -> u64 {
    let t0 = Instant::now();
    if rng.range_u32(0, 4) > 0 {
        let len = 64 + rng.range_usize(0, 448);
        let fill = rng.range_u32(0, 256) as u8;
        let root_node = rng.range_usize(0, nodes);
        let got = comm
            .bcast(root_node, comm.ranks()[0], vec![fill; len])
            .expect("valid bcast")
            .wait();
        if check {
            assert!(
                got.len() == comm.n_members() && got.iter().all(|m| m == &vec![fill; len]),
                "bcast payload mismatch"
            );
        }
    } else {
        let count = 8 + rng.range_usize(0, 24);
        let inputs: Vec<Vec<f64>> = (0..comm.n_members())
            .map(|m| (0..count).map(|i| (m * 31 + i) as f64).collect())
            .collect();
        let expect: Vec<f64> = (0..count)
            .map(|i| (0..comm.n_members()).map(|m| (m * 31 + i) as f64).sum())
            .collect();
        let got = comm.allreduce(inputs).expect("valid allreduce").wait();
        if check {
            assert!(
                got.iter().all(|m| *m == expect),
                "allreduce result mismatch"
            );
        }
    }
    t0.elapsed().as_nanos() as u64
}

/// The victim's closed-loop train; returns its per-op latencies (ns).
fn victim_train(comm: &Comm, ops: usize, nodes: usize, check: bool, seed: u64) -> Vec<u64> {
    let mut rng = Rng::new(seed);
    (0..ops)
        .map(|_| one_op(comm, &mut rng, nodes, check))
        .collect()
}

struct TenantOutcome {
    name: String,
    latency: LatencySummary,
    ops_per_s: f64,
}

/// Fairness phase: `tenants` equal-weight tenants × `sessions` threads,
/// each running a closed-loop train. Returns per-tenant outcomes.
fn fairness_phase(svc: &Arc<Service>, shape: &Shape, check: bool) -> Vec<TenantOutcome> {
    let handles: Vec<_> = (0..shape.tenants)
        .flat_map(|t| (0..shape.sessions).map(move |s| (t, s)))
        .map(|(t, s)| {
            let svc = svc.clone();
            let nodes = shape.nodes;
            let ops = shape.ops_per_session;
            std::thread::spawn(move || {
                let session = svc.open_session(&format!("tenant-{t}"), 1).unwrap();
                let comm = session.comm_world();
                let mut rng = Rng::new(0x50AC + (t * 1000 + s) as u64);
                let t0 = Instant::now();
                let lat: Vec<u64> = (0..ops)
                    .map(|_| one_op(&comm, &mut rng, nodes, check))
                    .collect();
                (t, lat, t0.elapsed().as_secs_f64())
            })
        })
        .collect();
    let mut per_tenant_lat: Vec<Vec<u64>> = vec![Vec::new(); shape.tenants];
    let mut per_tenant_busy: Vec<f64> = vec![0.0; shape.tenants];
    for h in handles {
        let (t, lat, busy) = h.join().expect("session thread");
        per_tenant_lat[t].extend(lat);
        per_tenant_busy[t] = per_tenant_busy[t].max(busy);
    }
    (0..shape.tenants)
        .map(|t| {
            let ops = per_tenant_lat[t].len();
            TenantOutcome {
                name: format!("tenant-{t}"),
                latency: summarize(&mut per_tenant_lat[t]),
                ops_per_s: ops as f64 / per_tenant_busy[t].max(1e-9),
            }
        })
        .collect()
}

/// Flood phase: the victim repeats its closed-loop train [`SUB_RUNS`]
/// times while `flooder` submits open-loop as fast as admission allows
/// the whole time. Returns (per-sub-run victim latencies, flooder
/// submitted-op count).
fn flood_phase(svc: &Arc<Service>, shape: &Shape, check: bool) -> (Vec<Vec<u64>>, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let flooder = {
        let svc = svc.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let session = svc.open_session("flooder", 1).unwrap();
            let comm = session.comm_world();
            let mut sent = 0u64;
            let mut pending = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                match comm.try_bcast(0, 0, vec![0xF1u8; 512]) {
                    Ok(t) => {
                        sent += 1;
                        pending.push(t);
                        if pending.len() > 64 {
                            pending.remove(0).wait();
                        }
                    }
                    // Backpressure: drain the oldest in-flight op instead
                    // of spinning — couples the retry to real progress and
                    // keeps the flooder from burning a core the victim,
                    // dispatcher, and rank threads need on a small host.
                    Err(SvcError::Sched(_)) if !pending.is_empty() => {
                        pending.remove(0).wait();
                    }
                    Err(SvcError::Sched(_)) => std::thread::yield_now(),
                    Err(e) => panic!("flooder hit unexpected error: {e}"),
                }
            }
            for t in pending {
                t.wait();
            }
            sent
        })
    };
    let session = svc.open_session("victim", 1).unwrap();
    let comm = session.comm_world();
    let trains: Vec<Vec<u64>> = (0..SUB_RUNS)
        .map(|r| {
            victim_train(
                &comm,
                shape.victim_ops,
                shape.nodes,
                check,
                0xF100D + r as u64,
            )
        })
        .collect();
    stop.store(true, Ordering::Relaxed);
    let flooded = flooder.join().expect("flooder thread");
    (trains, flooded)
}

fn json_summary(s: &LatencySummary) -> String {
    format!(
        "{{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
        s.count, s.p50_ns, s.p99_ns, s.p999_ns
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut small = false;
    let mut check = false;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => small = true,
            "--check" => check = true,
            "--json" => match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("--json needs a file path");
                    std::process::exit(2);
                }
            },
            bad => {
                eprintln!("unknown flag {bad}; usage: svc_soak [--small] [--check] [--json FILE]");
                std::process::exit(2);
            }
        }
    }
    let shape = if small { SMALL } else { FULL };
    println!(
        "svc_soak: {} nodes x {} ranks, {} tenants x {} sessions ({} sessions total)",
        shape.nodes,
        shape.ranks,
        shape.tenants,
        shape.sessions,
        shape.tenants * shape.sessions + 2
    );

    // Phase 1: equal-weight fairness.
    let svc = Arc::new(Service::with_config(
        shape.nodes,
        shape.ranks,
        soak_config(),
    ));
    let t0 = Instant::now();
    let outcomes = fairness_phase(&svc, &shape, check);
    let fairness_wall = t0.elapsed().as_secs_f64();
    let total_ops: usize = outcomes.iter().map(|o| o.latency.count).sum();
    let soak_ops_per_s = total_ops as f64 / fairness_wall.max(1e-9);
    let jain = jain_index(&outcomes.iter().map(|o| o.ops_per_s).collect::<Vec<_>>());
    for o in &outcomes {
        println!(
            "{}: {} ops, p50 {} us, p99 {} us, p999 {} us, {:.0} ops/s",
            o.name,
            o.latency.count,
            o.latency.p50_ns / 1000,
            o.latency.p99_ns / 1000,
            o.latency.p999_ns / 1000,
            o.ops_per_s
        );
    }
    println!("fairness: jain {jain:.4} over {} equal-weight tenants, {soak_ops_per_s:.0} ops/s aggregate", shape.tenants);

    // Phases 2+3: solo baseline then flood isolation. Sub-run minima
    // absorb per-op interference spikes, but a whole phase can still land
    // on a slow stretch of the host (CPU steal, a sibling burst), which
    // skews the ratio in either direction. Under `--check` a violated
    // ratio therefore re-measures the solo/flood pair up to two more
    // times and only a persistent violation fails; reported numbers are
    // from the last attempt.
    let attempts = if check { 3 } else { 1 };
    let (mut solo, mut solo_p99) = (LatencySummary::default(), 0u64);
    let (mut flood, mut flood_p99) = (LatencySummary::default(), 0u64);
    let (mut flooded, mut p99_ratio) = (0u64, f64::INFINITY);
    for attempt in 1..=attempts {
        // Solo baseline on a fresh service so nothing else is queued.
        (solo, solo_p99) = {
            let svc = Service::with_config(shape.nodes, shape.ranks, soak_config());
            let session = svc.open_session("victim", 1).unwrap();
            let comm = session.comm_world();
            // Unmeasured warmup: the first ops on a fresh cluster pay
            // thread park/unpark and allocator cold-start, which would
            // inflate the solo p99 the flood phase is compared against.
            victim_train(&comm, 8, shape.nodes, check, 0x3A3);
            let trains: Vec<Vec<u64>> = (0..SUB_RUNS)
                .map(|r| {
                    victim_train(
                        &comm,
                        shape.victim_ops,
                        shape.nodes,
                        check,
                        0x501F + r as u64,
                    )
                })
                .collect();
            robust_summary("solo", trains)
        };
        println!(
            "solo: {} ops, p50 {} us, p99 {} us (robust {} us), p999 {} us",
            solo.count,
            solo.p50_ns / 1000,
            solo.p99_ns / 1000,
            solo_p99 / 1000,
            solo.p999_ns / 1000
        );
        let (flood_trains, n) = flood_phase(&svc, &shape, check);
        flooded = n;
        (flood, flood_p99) = robust_summary("flood", flood_trains);
        p99_ratio = flood_p99 as f64 / solo_p99.max(1) as f64;
        println!(
            "flood: victim p50 {} us, p99 {} us (robust {} us, {p99_ratio:.2}x solo) p999 {} us while flooder pushed {flooded} ops",
            flood.p50_ns / 1000,
            flood.p99_ns / 1000,
            flood_p99 / 1000,
            flood.p999_ns / 1000
        );
        if p99_ratio <= 2.0 {
            break;
        }
        if attempt < attempts {
            println!("isolation: {p99_ratio:.2}x exceeds 2.0x, re-measuring (attempt {attempt} of {attempts})");
        }
    }

    if let Some(path) = json_path {
        let mut out = String::from("{\n");
        // Schema tag so the perf-report ingester can type this document
        // (and reject malformed ones with a typed error).
        out.push_str("  \"schema\": \"bgp-svc-soak-v1\",\n");
        out.push_str(&format!(
            "  \"shape\": {{\"nodes\": {}, \"ranks\": {}, \"tenants\": {}, \"sessions\": {}}},\n",
            shape.nodes, shape.ranks, shape.tenants, shape.sessions
        ));
        out.push_str(&format!(
            "  \"solo\": {{\"merged\": {}, \"robust_p99_ns\": {solo_p99}}},\n",
            json_summary(&solo)
        ));
        out.push_str("  \"fairness\": {\n");
        out.push_str(&format!("    \"jain\": {jain:.6},\n"));
        out.push_str(&format!(
            "    \"aggregate_ops_per_s\": {soak_ops_per_s:.1},\n"
        ));
        out.push_str("    \"tenants\": [\n");
        for (i, o) in outcomes.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"name\": \"{}\", \"ops_per_s\": {:.1}, \"latency\": {}}}{}\n",
                o.name,
                o.ops_per_s,
                json_summary(&o.latency),
                if i + 1 < outcomes.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n  },\n");
        out.push_str(&format!(
            "  \"flood\": {{\"victim\": {}, \"robust_p99_ns\": {flood_p99}, \"flooder_ops\": {flooded}, \"p99_vs_solo\": {p99_ratio:.4}}}\n",
            json_summary(&flood)
        ));
        out.push_str("}\n");
        std::fs::write(&path, out).expect("write json report");
        println!("json: wrote {path}");
    }

    if check {
        assert!(
            flooded as usize > shape.victim_ops,
            "flood never materialized ({flooded} ops) — isolation was not exercised"
        );
        assert!(
            jain >= 0.9,
            "Jain fairness index {jain:.4} below the 0.9 bound: {:?}",
            outcomes.iter().map(|o| o.ops_per_s).collect::<Vec<_>>()
        );
        assert!(
            p99_ratio <= 2.0,
            "victim p99 under flood is {p99_ratio:.2}x solo (bound 2.0x): solo {} us, flood {} us",
            solo_p99 / 1000,
            flood_p99 / 1000
        );
        println!("check: jain {jain:.4} >= 0.9, flood p99 {p99_ratio:.2}x <= 2.0x solo");
    }
}
