//! Regenerate fig6 of the paper. `--small` runs a 64-node partition;
//! `--json` emits JSON instead of the text table; `--trace` additionally
//! writes `BENCH_fig6_phases.json` + `BENCH_fig6_trace.json` (a per-phase
//! breakdown and a `chrome://tracing` trace of one representative bcast).
use bgp_bench::trace::{self, TraceOp};
use bgp_bench::{figures, Scale};
use bgp_machine::{MachineConfig, OpMode};
use bgp_mpi::BcastAlgorithm;

fn main() {
    let scale = Scale::from_args();
    let fig = figures::fig6(scale);
    if std::env::args().any(|a| a == "--json") {
        println!("{}", fig.to_json());
    } else {
        fig.print();
    }
    trace::emit_if_requested(
        "fig6",
        MachineConfig::with_nodes(scale.nodes(), OpMode::Quad),
        TraceOp::Bcast(BcastAlgorithm::TreeShaddr { caching: true }, 64 << 10),
    );
}
