//! sched_real — throughput of the nonblocking scheduler and the
//! op-batching service layer on the host, mirroring `cluster_real`.
//!
//! Two questions:
//!
//! 1. **Does depth pay?** Ops/sec of small (1 KiB) broadcasts posted
//!    through [`Sched`] at in-flight depth 1 vs 4 vs 16. Depth > 1 lets
//!    the progress engine overlap tree injection, forwarding, and member
//!    copies across operations; `--check` asserts it beats depth 1.
//! 2. **Does coalescing pay?** The same burst of small same-root
//!    broadcasts through the [`CollectiveServer`], once with fusion
//!    enabled and once disabled.
//!
//! All numbers are host wall time (never gated). Usage:
//!
//! ```text
//! sched_real [--small] [--check] [--trace FILE]
//!   --small   2 nodes × 2 ranks (the CI smoke shape); default 2 × 4
//!   --check   verify payloads and assert ops/sec(depth>1) > ops/sec(depth=1)
//!   --trace   write a Chrome trace with the sched.* service counters,
//!             plus FILE.folded (collapsed-stack format, flamegraph-ready)
//! ```

use std::hint::black_box;
use std::sync::Arc;

use bgp_bench::harness::bench_case_median;
use bgp_sched::{CollectiveServer, Sched, ServerConfig};
use bgp_shmem::SharedRegion;
use bgp_sim::{Probe, SimTime};
use bgp_smp::Cluster;

const PAYLOAD: usize = 1024;
const DEPTHS: [usize; 3] = [1, 4, 16];
const BURST: usize = 32;

/// One timed unit: post `depth` rotating-root broadcasts, then wait for
/// all of them. Returns per-rank payload verdicts.
fn bcast_burst(cluster: &Cluster, depth: usize, check: bool) {
    let ok = cluster.run(move |cctx| {
        let group: Vec<usize> = (0..cctx.n_ranks()).collect();
        let mut sched = Sched::new(cctx);
        let mut reqs = Vec::with_capacity(depth);
        let mut bufs = Vec::with_capacity(depth);
        for i in 0..depth {
            let root_node = i % cctx.n_nodes();
            let root_rank = i % cctx.n_ranks();
            let buf = Arc::new(SharedRegion::new(PAYLOAD));
            if cctx.node() == root_node && cctx.rank() == root_rank {
                // SAFETY: fresh region, not yet shared.
                unsafe { buf.write(0, &[i as u8; PAYLOAD]) };
            }
            reqs.push(
                sched
                    .ibcast(&group, root_node, root_rank, Some(&buf), PAYLOAD)
                    .expect("valid post"),
            );
            bufs.push(buf);
        }
        sched.wait_all(&reqs);
        bufs.iter().enumerate().all(|(i, b)| {
            let mut got = vec![0u8; PAYLOAD];
            // SAFETY: request i completed.
            unsafe { b.read(0, &mut got) };
            got.iter().all(|&x| x == i as u8)
        })
    });
    if check {
        assert!(ok.iter().flatten().all(|&r| r), "bcast payload mismatch");
    }
    black_box(ok);
}

/// A burst of same-root broadcasts through the server; returns per-ticket
/// payload verdicts.
fn server_burst(server: &CollectiveServer, n_ranks: usize, check: bool) {
    let group: Vec<usize> = (0..n_ranks).collect();
    let tickets: Vec<_> = (0..BURST)
        .map(|i| {
            server
                .submit_bcast(&group, 0, 0, vec![i as u8; 256])
                .expect("valid submission")
        })
        .collect();
    for (i, t) in tickets.into_iter().enumerate() {
        let got = t.wait();
        if check {
            assert!(
                got.iter().all(|m| m.iter().all(|&b| b == i as u8)),
                "server payload mismatch"
            );
        }
        black_box(got);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut small = false;
    let mut check = false;
    let mut trace_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small" => small = true,
            "--check" => check = true,
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => {
                    eprintln!("--trace needs a file path");
                    std::process::exit(2);
                }
            },
            bad => {
                eprintln!(
                    "unknown flag {bad}; usage: sched_real [--small] [--check] [--trace FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    let (m, n) = if small {
        (2usize, 2usize)
    } else {
        (2usize, 4usize)
    };
    println!("sched_real: {m} nodes x {n} ranks, nonblocking depth sweep + server coalescing");

    let started = std::time::Instant::now();
    let cluster = Cluster::new(m, n);

    // 1. Depth sweep: same total per-op work, increasing overlap.
    let mut ops_per_sec = Vec::new();
    for depth in DEPTHS {
        let us = bench_case_median(&format!("sched/ibcast_1K_depth{depth}"), 10, || {
            bcast_burst(&cluster, depth, check)
        });
        ops_per_sec.push(depth as f64 / (us / 1e6));
    }
    for (depth, ops) in DEPTHS.iter().zip(&ops_per_sec) {
        println!("sched/ibcast_1K_depth{depth}: {ops:.0} ops/s");
    }

    // 2. Server burst with and without coalescing.
    let fused = CollectiveServer::with_config(m, n, ServerConfig::default());
    let coalesce_us = bench_case_median("sched/server_burst_coalesced", 5, || {
        server_burst(&fused, n, check)
    });
    let stats = fused.stats();
    drop(fused);
    let unfused = CollectiveServer::with_config(
        m,
        n,
        ServerConfig {
            coalesce_max_ops: 1,
            ..ServerConfig::default()
        },
    );
    let plain_us = bench_case_median("sched/server_burst_uncoalesced", 5, || {
        server_burst(&unfused, n, check)
    });
    drop(unfused);
    println!(
        "sched/server_burst: coalesced {:.0} ops/s, uncoalesced {:.0} ops/s",
        BURST as f64 / (coalesce_us / 1e6),
        BURST as f64 / (plain_us / 1e6),
    );
    println!(
        "probe: sched.queue_depth={} sched.wait_ns={} sched.coalesced={}",
        stats.peak_queue_depth, stats.wait_ns, stats.coalesced
    );

    if let Some(path) = trace_path {
        let mut probe = Probe::new();
        probe.enable();
        probe.begin_op("sched", "CollectiveServer");
        probe.record(
            "serve",
            0,
            SimTime::ZERO,
            SimTime::from_nanos(started.elapsed().as_nanos() as u64),
        );
        probe.count("sched.queue_depth", stats.peak_queue_depth);
        probe.count("sched.wait_ns", stats.wait_ns);
        probe.count("sched.coalesced", stats.coalesced);
        std::fs::write(&path, probe.chrome_trace()).expect("write trace");
        // The same spans in collapsed-stack format, flamegraph-ready.
        let folded_path = format!("{path}.folded");
        std::fs::write(&folded_path, probe.collapsed()).expect("write folded");
        println!("trace: wrote {path} and {folded_path}");
    }

    if check {
        let d1 = ops_per_sec[0];
        assert!(
            ops_per_sec[1..].iter().any(|&o| o > d1),
            "depth > 1 should raise small-message ops/sec over depth 1 \
             (got {ops_per_sec:?})"
        );
        println!(
            "check: best depth>1 beats depth 1 by {:.1}%",
            (ops_per_sec[1..].iter().cloned().fold(0.0, f64::max) - d1) / d1 * 100.0
        );
    }
}
