//! Extension (paper §VII future work): MPI_Allgather with the paper's
//! mechanisms. `--small` for a 64-node run.
use bgp_bench::{figures, Scale};

fn main() {
    figures::ext_allgather(Scale::from_args()).print();
}
