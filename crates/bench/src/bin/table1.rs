//! Regenerate table1 of the paper. `--small` runs a 64-node partition;
//! `--json` emits JSON instead of the text table; `--trace` additionally
//! writes `BENCH_table1_phases.json` + `BENCH_table1_trace.json` (a
//! per-phase breakdown and a `chrome://tracing` trace of one allreduce).
use bgp_bench::trace::{self, TraceOp};
use bgp_bench::{figures, Scale};
use bgp_machine::{MachineConfig, OpMode};
use bgp_mpi::allreduce::AllreduceAlgorithm;

fn main() {
    let scale = Scale::from_args();
    let fig = figures::table1(scale);
    if std::env::args().any(|a| a == "--json") {
        println!("{}", fig.to_json());
    } else {
        fig.print();
    }
    trace::emit_if_requested(
        "table1",
        MachineConfig::with_nodes(scale.nodes(), OpMode::Quad),
        TraceOp::Allreduce(AllreduceAlgorithm::ShaddrSpecialized, 64 * 1024),
    );
}
