//! Ablation: aggregate bandwidth vs color count (1D/2D/3D tori).
use bgp_bench::figures;

fn main() {
    figures::ablation_colors().print();
}
