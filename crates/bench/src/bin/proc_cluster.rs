//! proc_cluster — the cross-process shared-memory backend against the
//! in-process thread cluster, same geometry, same protocols.
//!
//! The interesting number is the *backend tax*: the broadcast and ring
//! allreduce run byte-identically over threads-in-one-process (heap
//! channels) and over N real OS processes (mmap'd segment channels), so
//! the per-operation wall-time difference is what crossing a process
//! boundary actually costs on this host. Complements the gated
//! `proc/xproc_overhead_64K` ratio (two mappings, one process) with the
//! true many-process measurement — host wall time, never gated, for the
//! EXPERIMENTS record.
//!
//! ```text
//! proc_cluster [--small] [--check]
//!   --small   2 nodes (the CI smoke shape); default 3
//!   --check   byte-compare every operation against the expected payload
//! ```

use std::hint::black_box;

use bgp_bench::harness::bench_case_median;
use bgp_smp::collectives::write_f64s;
use bgp_smp::proc::{allreduce_input, bcast_pattern, maybe_worker, ProcCluster};
use bgp_smp::{Cluster, ClusterCtx};

const BCAST_LEN: usize = 64 * 1024;
const ALLREDUCE_DOUBLES: usize = 8 * 1024;
const CHUNK: usize = 4096;
const WINDOW: usize = 4;

fn main() {
    // Worker re-execs of this binary land here and serve until shutdown.
    maybe_worker();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let check = args.iter().any(|a| a == "--check");
    if let Some(bad) = args.iter().find(|a| *a != "--small" && *a != "--check") {
        eprintln!("unknown flag {bad}; usage: proc_cluster [--small] [--check]");
        std::process::exit(2);
    }
    let m = if small { 2usize } else { 3 };
    println!("proc_cluster: {m} nodes, 1 OS process per node vs 1 thread per node");

    let max_msg = BCAST_LEN.max(ALLREDUCE_DOUBLES * 8);
    let mut procs = ProcCluster::new(m, CHUNK, WINDOW, max_msg).expect("spawn proc cluster");
    let threads = Cluster::with_geometry(m, 1, CHUNK, WINDOW);

    // Broadcast, thread backend.
    bench_case_median("proc/bcast_threads_64K", 10, || {
        let expect = bcast_pattern(1, BCAST_LEN);
        let out = threads.run(move |cctx: &mut ClusterCtx| {
            let buf = cctx.intra().alloc_buffer(BCAST_LEN);
            if cctx.node() == 0 {
                unsafe { buf.write(0, &bcast_pattern(1, BCAST_LEN)) };
            }
            cctx.intra().barrier();
            cctx.bcast(0, &buf, BCAST_LEN);
            unsafe { buf.snapshot() }
        });
        if check {
            for ranks in &out {
                for snap in ranks {
                    assert_eq!(snap[..], expect[..], "thread bcast mismatch");
                }
            }
        }
        black_box(out);
    });

    // Broadcast, process backend (same wire protocol over the segment).
    let mut seed = 0u64;
    bench_case_median("proc/bcast_processes_64K", 10, || {
        seed += 1;
        let out = procs.bcast(0, seed, BCAST_LEN).expect("proc bcast");
        if check {
            let expect = bcast_pattern(seed, BCAST_LEN);
            for (v, got) in out.iter().enumerate() {
                assert_eq!(got[..], expect[..], "proc bcast mismatch at node {v}");
            }
        }
        black_box(out);
    });

    // Allreduce, thread backend.
    bench_case_median("proc/allreduce_threads_8Kdoubles", 10, || {
        let out = threads.run(move |cctx: &mut ClusterCtx| {
            let input = cctx.intra().alloc_buffer(ALLREDUCE_DOUBLES * 8);
            let output = cctx.intra().alloc_buffer(ALLREDUCE_DOUBLES * 8);
            let bytes = allreduce_input(3, cctx.node(), ALLREDUCE_DOUBLES);
            let vals: Vec<f64> = bytes
                .chunks_exact(8)
                .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
                .collect();
            write_f64s(&input, 0, &vals);
            cctx.intra().barrier();
            cctx.allreduce_f64(&input, &output, ALLREDUCE_DOUBLES);
            unsafe { output.snapshot() }
        });
        black_box(out);
    });

    // Allreduce, process backend; --check asserts the acceptance property
    // (bitwise-identical to the thread backend) on every sample.
    let reference = threads.run(move |cctx: &mut ClusterCtx| {
        let input = cctx.intra().alloc_buffer(ALLREDUCE_DOUBLES * 8);
        let output = cctx.intra().alloc_buffer(ALLREDUCE_DOUBLES * 8);
        let bytes = allreduce_input(3, cctx.node(), ALLREDUCE_DOUBLES);
        let vals: Vec<f64> = bytes
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
            .collect();
        write_f64s(&input, 0, &vals);
        cctx.intra().barrier();
        cctx.allreduce_f64(&input, &output, ALLREDUCE_DOUBLES);
        unsafe { output.snapshot() }
    });
    bench_case_median("proc/allreduce_processes_8Kdoubles", 10, || {
        let out = procs
            .allreduce(3, ALLREDUCE_DOUBLES)
            .expect("proc allreduce");
        if check {
            for (v, got) in out.iter().enumerate() {
                assert_eq!(
                    got[..],
                    reference[v][0][..],
                    "proc allreduce diverges from thread backend at node {v}"
                );
            }
        }
        black_box(out);
    });

    println!(
        "chunks moved through the segment: {}",
        procs.fabric().total_chunks_sent()
    );
    procs.shutdown().expect("orderly worker shutdown");
    if check {
        println!("proc_cluster: all payload checks passed");
    }
}
