//! cluster_real — sustained back-to-back traffic through the persistent
//! real-thread cluster runtime, against a spawn-per-iteration baseline.
//!
//! Three questions, measured on the host:
//!
//! 1. **Is persistence worth it?** The same cluster broadcast, once on a
//!    long-lived [`Cluster`] (rank threads parked between operations) and
//!    once paying `Cluster::new` + drop every iteration. `--check` asserts
//!    the persistent runtime wins.
//! 2. **What do the integrated protocols cost end-to-end?** The §V-A/V-B
//!    broadcast and the §V-C multi-color ring allreduce at their paper-ish
//!    sizes.
//! 3. **Does sustained traffic hold up?** A mixed train of rotating-root
//!    broadcasts and allreduces back to back on one persistent cluster.
//!
//! All numbers are host wall time (never gated). Usage:
//!
//! ```text
//! cluster_real [--small] [--check]
//!   --small   2 nodes × 2 ranks (the CI smoke shape); default 2 × 4
//!   --check   verify payloads every iteration and assert the persistent
//!             runtime beats the spawn-per-call baseline
//! ```

use std::hint::black_box;

use bgp_bench::harness::bench_case_median;
use bgp_smp::collectives::{read_f64s, write_f64s};
use bgp_smp::Cluster;

const CMP_LEN: usize = 64 * 1024; // persistent-vs-spawn payload
const BCAST_LEN: usize = 256 * 1024;
const ALLREDUCE_COUNT: usize = 16 * 1024; // doubles

fn bcast_once(cluster: &Cluster, len: usize, check: bool) {
    let ok = cluster.run(move |cctx| {
        let buf = cctx.intra().alloc_buffer(len);
        if cctx.node() == 0 && cctx.rank() == 0 {
            unsafe { buf.write(0, &vec![0xA5u8; len]) };
        }
        cctx.intra().barrier();
        cctx.bcast(0, &buf, len);
        let snap = unsafe { buf.snapshot() };
        snap.iter().all(|&b| b == 0xA5)
    });
    if check {
        assert!(
            ok.iter().flatten().all(|&rank_ok| rank_ok),
            "bcast payload mismatch"
        );
    }
    black_box(ok);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let check = args.iter().any(|a| a == "--check");
    if let Some(bad) = args.iter().find(|a| *a != "--small" && *a != "--check") {
        eprintln!("unknown flag {bad}; usage: cluster_real [--small] [--check]");
        std::process::exit(2);
    }
    let (m, n) = if small {
        (2usize, 2usize)
    } else {
        (2usize, 4usize)
    };
    println!("cluster_real: {m} nodes x {n} ranks, persistent rank threads vs spawn-per-call");

    let cluster = Cluster::new(m, n);

    // 1. Persistence: identical per-iteration work, with and without the
    // per-call thread spawn + NodeShared/Fabric construction.
    let persistent_us = bench_case_median("cluster/bcast_persistent_64K", 10, || {
        bcast_once(&cluster, CMP_LEN, check)
    });
    let spawn_us = bench_case_median("cluster/bcast_spawn_per_call_64K", 10, || {
        let fresh = Cluster::new(m, n);
        bcast_once(&fresh, CMP_LEN, check)
    });

    // 2. The integrated protocols at their headline-ish sizes.
    bench_case_median("cluster/bcast_256K", 10, || {
        bcast_once(&cluster, BCAST_LEN, check)
    });
    let world = (m * n) as f64;
    let expect_sum = ALLREDUCE_COUNT as f64 * world * (world + 1.0) / 2.0;
    bench_case_median("cluster/allreduce_f64_16K", 10, || {
        let got = cluster.run(move |cctx| {
            let input = cctx.intra().alloc_buffer(ALLREDUCE_COUNT * 8);
            let output = cctx.intra().alloc_buffer(ALLREDUCE_COUNT * 8);
            write_f64s(
                &input,
                0,
                &vec![cctx.global_rank() as f64 + 1.0; ALLREDUCE_COUNT],
            );
            cctx.intra().barrier();
            cctx.allreduce_f64(&input, &output, ALLREDUCE_COUNT);
            read_f64s(&output, 0, ALLREDUCE_COUNT).iter().sum::<f64>()
        });
        if check {
            assert!(
                got.iter().flatten().all(|&s| s == expect_sum),
                "allreduce sum mismatch"
            );
        }
        black_box(got);
    });

    // 2b. The node-aware allreduce (intra-node reduce + ring reduce-scatter
    // + ring allgather) at the same size: identical sums, and the fabric
    // chunk probe. On quad-core nodes (n = 4) it moves strictly fewer
    // inter-node chunks than the flat multi-color ring (which rounds each
    // of the n color spans up to the chunk grid separately); at n = 2 the
    // two schedules tie, so the --small smoke asserts <=.
    let na_once = |fused: bool| {
        let got = cluster.run(move |cctx| {
            let input = cctx.intra().alloc_buffer(ALLREDUCE_COUNT * 8);
            let output = cctx.intra().alloc_buffer(ALLREDUCE_COUNT * 8);
            write_f64s(
                &input,
                0,
                &vec![cctx.global_rank() as f64 + 1.0; ALLREDUCE_COUNT],
            );
            cctx.intra().barrier();
            if fused {
                cctx.allreduce_f64_node_aware_fused(&input, &output, ALLREDUCE_COUNT);
            } else {
                cctx.allreduce_f64_node_aware(&input, &output, ALLREDUCE_COUNT);
            }
            read_f64s(&output, 0, ALLREDUCE_COUNT).iter().sum::<f64>()
        });
        if check {
            assert!(
                got.iter().flatten().all(|&s| s == expect_sum),
                "node-aware allreduce sum mismatch"
            );
        }
        black_box(got);
    };
    bench_case_median("cluster/allreduce_node_aware_16K", 10, || na_once(false));
    bench_case_median("cluster/allreduce_node_aware_fused_16K", 10, || {
        na_once(true)
    });
    let chunks = |cluster: &Cluster| -> usize {
        cluster.run(|cctx| cctx.fabric().total_chunks_sent())[0][0]
    };
    let before = chunks(&cluster);
    let got = cluster.run(move |cctx| {
        let input = cctx.intra().alloc_buffer(ALLREDUCE_COUNT * 8);
        let output = cctx.intra().alloc_buffer(ALLREDUCE_COUNT * 8);
        write_f64s(&input, 0, &vec![1.0; ALLREDUCE_COUNT]);
        cctx.intra().barrier();
        cctx.allreduce_f64(&input, &output, ALLREDUCE_COUNT);
    });
    black_box(got);
    let flat_chunks = chunks(&cluster) - before;
    let before = chunks(&cluster);
    na_once(false);
    let na_chunks = chunks(&cluster) - before;
    println!(
        "probe: inter-node chunks per 16K-double allreduce: flat={flat_chunks} node_aware={na_chunks}"
    );
    if check {
        if n >= 4 {
            assert!(
                na_chunks < flat_chunks,
                "node-aware must send fewer chunks than the flat ring on quad nodes \
                 (na={na_chunks}, flat={flat_chunks})"
            );
        } else {
            assert!(
                na_chunks <= flat_chunks,
                "node-aware must never send more chunks than the flat ring \
                 (na={na_chunks}, flat={flat_chunks})"
            );
        }
    }

    // 3. Sustained mixed traffic: rotating-root broadcasts interleaved with
    // allreduces, all on the one persistent cluster, buffers reused.
    bench_case_median("cluster/sustained_bcast+allreduce_x8", 5, || {
        let trains = cluster.run(move |cctx| {
            let buf = cctx.intra().alloc_buffer(BCAST_LEN);
            let input = cctx.intra().alloc_buffer(ALLREDUCE_COUNT * 8);
            let output = cctx.intra().alloc_buffer(ALLREDUCE_COUNT * 8);
            write_f64s(&input, 0, &vec![1.0; ALLREDUCE_COUNT]);
            unsafe { buf.write(0, &vec![cctx.global_rank() as u8; BCAST_LEN]) };
            cctx.intra().barrier();
            for i in 0..8usize {
                let m = cctx.n_nodes();
                cctx.bcast(i % m, &buf, BCAST_LEN);
                cctx.allreduce_f64(&input, &output, ALLREDUCE_COUNT);
            }
        });
        black_box(trains);
    });

    let stats = cluster.stats();
    println!(
        "probe: bcast_recv_ops={} copyout_overlapped={}",
        stats.bcast_recv_ops, stats.copyout_overlapped
    );

    if check {
        assert!(
            persistent_us < spawn_us,
            "persistent runtime ({persistent_us:.2} us) should beat \
             spawn-per-call ({spawn_us:.2} us)"
        );
        println!(
            "check: persistent beats spawn-per-call by {:.1}%",
            (spawn_us - persistent_us) / spawn_us * 100.0
        );
    }
}
