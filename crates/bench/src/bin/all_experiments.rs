//! Regenerate every table and figure in one run (EXPERIMENTS.md source).
use bgp_bench::{figures, Scale};

fn main() {
    let scale = Scale::from_args();
    for fig in [
        figures::fig6(scale),
        figures::fig7(scale),
        figures::fig8(scale),
        figures::fig9(),
        figures::fig10(scale),
        figures::table1(scale),
        figures::ablation_pwidth(scale),
        figures::ablation_fifo(scale),
        figures::ablation_colors(),
        figures::ext_allgather(scale),
        figures::ext_reduce_gather(scale),
    ] {
        fig.print();
        println!();
    }
}
