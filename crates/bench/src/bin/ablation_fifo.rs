//! Regenerate ablation_fifo of the paper. `--small` runs a 64-node partition;
//! `--json` emits JSON instead of the text table.
use bgp_bench::{figures, Scale};

fn main() {
    let fig = figures::ablation_fifo(Scale::from_args());
    if std::env::args().any(|a| a == "--json") {
        println!("{}", fig.to_json());
    } else {
        fig.print();
    }
}
