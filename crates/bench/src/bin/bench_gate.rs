//! The performance-regression gate.
//!
//! ```text
//! bench_gate --small --label baseline        # refresh BENCH_baseline.json
//! bench_gate --small --check                 # compare vs BENCH_baseline.json, exit 1 on regression
//! bench_gate --selftest                      # prove the gate fires on an injected 20% slowdown
//! bench_gate --small --check --with-real     # also record (ungated) real-thread wall times
//! ```
//!
//! Flags: `--small` (64 nodes, the deterministic CI shape; default is the
//! paper's 2048), `--label <name>` (output `BENCH_<name>.json`, default
//! `current`), `--baseline <path>`, `--tol <pct>` (default 10),
//! `--with-real`, `--check`, `--selftest`, `--no-write`.
//!
//! Simulated entries are bit-deterministic, so any delta against the
//! committed baseline is a real behavior change, not noise; real-thread
//! entries are host wall time and are reported but never gated.

use std::process::ExitCode;

use bgp_tune::gate::{self, GateScale};

fn main() -> ExitCode {
    let mut scale = GateScale::Paper;
    let mut label = "current".to_string();
    let mut baseline_path = "BENCH_baseline.json".to_string();
    let mut tol = gate::DEFAULT_TOLERANCE_PCT;
    let mut with_real = false;
    let mut check = false;
    let mut selftest = false;
    let mut write = true;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => scale = GateScale::Small,
            "--with-real" => with_real = true,
            "--check" => check = true,
            "--selftest" => selftest = true,
            "--no-write" => write = false,
            "--label" | "--baseline" | "--tol" => {
                let Some(v) = args.next() else {
                    eprintln!("{a} needs a value");
                    return ExitCode::FAILURE;
                };
                match a.as_str() {
                    "--label" => label = v,
                    "--baseline" => baseline_path = v,
                    _ => match v.parse::<f64>() {
                        Ok(t) if t >= 0.0 => tol = t,
                        _ => {
                            eprintln!("bad tolerance {v:?}");
                            return ExitCode::FAILURE;
                        }
                    },
                }
            }
            other => {
                eprintln!("unknown flag {other}; see the doc comment in bench_gate.rs for usage");
                return ExitCode::FAILURE;
            }
        }
    }

    if selftest {
        return run_selftest(scale);
    }

    let mut report = gate::run_suite(scale, with_real);
    report.label = label.clone();
    // Provenance stamp (label, BGP_GIT_SHA, monotonic seq over the files
    // already in cwd) so the report subsystem can order history without
    // mtimes. Stamped before the first write so even a run that fails the
    // comparison leaves an ordered artifact.
    gate::stamp_meta(&mut report, std::path::Path::new("."));
    let path = format!("BENCH_{label}.json");
    if write {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} ({} entries)", report.entries.len());
    }

    if !check {
        print!("{}", gate::compare(&report, &report, tol).render());
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match gate::GateReport::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bad baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if baseline.scale != report.scale {
        eprintln!(
            "baseline scale {:?} does not match current {:?}; regenerate with --label baseline",
            baseline.scale, report.scale
        );
        return ExitCode::FAILURE;
    }
    let outcome = gate::compare(&report, &baseline, tol);
    print!("{}", outcome.render());
    // Embed the comparison's violations into the written artifact so
    // `perf_report` can mark the offending points on trend charts.
    report.violations = outcome.violations();
    if write && !report.violations.is_empty() {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot rewrite {path} with violations: {e}");
            return ExitCode::FAILURE;
        }
    }
    if outcome.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Prove the gate can fail: an injected 20% slowdown across the suite must
/// be flagged, and the unmodified suite must pass against itself.
fn run_selftest(scale: GateScale) -> ExitCode {
    let base = gate::run_suite(scale, false);
    let clean = gate::compare(&base, &base, gate::DEFAULT_TOLERANCE_PCT);
    if !clean.passed() {
        eprintln!(
            "selftest: a report failed against itself\n{}",
            clean.render()
        );
        return ExitCode::FAILURE;
    }
    let mut slow = base.clone();
    gate::inject_slowdown(&mut slow, 20.0);
    let outcome = gate::compare(&slow, &base, gate::DEFAULT_TOLERANCE_PCT);
    if outcome.passed() {
        eprintln!(
            "selftest: injected 20% slowdown was NOT flagged\n{}",
            outcome.render()
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "selftest ok: injected 20% slowdown flagged ({} regressions), clean run passes",
        outcome.failures()
    );
    ExitCode::SUCCESS
}
