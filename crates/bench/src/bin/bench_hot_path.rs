//! Hot-path microbenchmark: per-stage latency decomposition of the
//! slot-loan transport plus the two gated speedup ratios.
//!
//! ```text
//! bench_hot_path                    # full iteration counts, write BENCH_hotpath.json
//! bench_hot_path --small --check    # CI shape: fewer iterations + correctness checks
//! ```
//!
//! Flags: `--small` (CI iteration counts), `--check` (verify the staged
//! and loaned paths compute identical results, the report parses under
//! the gate schema, and — in release builds — both speedup ratios beat
//! 1x), `--label <name>` (output `BENCH_<name>.json`, default `hotpath`),
//! `--no-write`.
//!
//! Stages are isolated by subtraction (empty cycle vs filled cycle vs
//! filled+copied cycle); the cross-thread end-to-end minus the summed
//! stages is printed as *transit* — the handoff/spin overhead no single
//! stage owns. See `bgp_tune::hotpath` for the methodology.

use std::process::ExitCode;

use bgp_tune::gate::GateReport;
use bgp_tune::hotpath;

fn main() -> ExitCode {
    let mut small = false;
    let mut check = false;
    let mut label = "hotpath".to_string();
    let mut write = true;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => small = true,
            "--check" => check = true,
            "--no-write" => write = false,
            "--label" => {
                let Some(v) = args.next() else {
                    eprintln!("--label needs a value");
                    return ExitCode::FAILURE;
                };
                label = v;
            }
            other => {
                eprintln!(
                    "unknown flag {other}; see the doc comment in bench_hot_path.rs for usage"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let mut report = hotpath::report(small);
    report.label = label.clone();

    println!("{:<28} {:>14} {:>6}  gated", "series", "value", "unit");
    for e in &report.entries {
        println!(
            "{:<28} {:>14.3} {:>6}  {}",
            e.id,
            e.value,
            e.unit,
            if e.gated { "yes" } else { "no" }
        );
    }
    let stage_sum: f64 = report
        .entries
        .iter()
        .filter(|e| e.unit == "ns" && e.id.starts_with("hotpath/"))
        .map(|e| e.value)
        .sum();
    let grab = |id: &str| {
        report
            .entries
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.value)
            .unwrap_or(0.0)
    };
    println!(
        "e2e {:.3} us = stages {:.3} us + transit {:.3} us (cross-core handoff / spin residual)",
        grab("hotpath/e2e_64K"),
        stage_sum / 1e3,
        grab("hotpath/transit_64K"),
    );

    if write {
        // Same provenance stamp as bench_gate, so hotpath reports order
        // alongside gate reports in the perf-report history.
        bgp_tune::gate::stamp_meta(&mut report, std::path::Path::new("."));
        let path = format!("BENCH_{label}.json");
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} ({} entries)", report.entries.len());
    }

    if check {
        if let Err(e) = hotpath::check() {
            eprintln!("check FAILED: {e}");
            return ExitCode::FAILURE;
        }
        let parsed = match GateReport::parse(&report.to_json()) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("check FAILED: report does not parse: {e}");
                return ExitCode::FAILURE;
            }
        };
        let ratios: Vec<_> = parsed.entries.iter().filter(|e| e.gated).collect();
        if ratios.len() != 2 || !ratios.iter().all(|e| e.unit == "x" && e.value.is_finite()) {
            eprintln!("check FAILED: expected exactly two gated ratio series");
            return ExitCode::FAILURE;
        }
        // In release the loaned/lane paths must actually win; a debug
        // build de-optimizes both sides unevenly, so only report there.
        if !cfg!(debug_assertions) {
            if let Some(worst) = ratios.iter().find(|e| e.value <= 1.0) {
                eprintln!(
                    "check FAILED: {} = {:.3}x does not beat the staged shape",
                    worst.id, worst.value
                );
                return ExitCode::FAILURE;
            }
        }
        eprintln!("check ok: paths agree, report parses, ratios sane");
    }
    ExitCode::SUCCESS
}
