//! Regenerate Figure 9 (scaling sweep: 1024..8192 processes).
//! `--json` emits JSON instead of the text table.
use bgp_bench::figures;

fn main() {
    let fig = figures::fig9();
    if std::env::args().any(|a| a == "--json") {
        println!("{}", fig.to_json());
    } else {
        fig.print();
    }
}
