//! Result tables: the common output format of every experiment.

use bgp_sim::json;

/// One x-position of a figure (a message size) with one value per series.
#[derive(Debug, Clone)]
pub struct Row {
    /// Message size in bytes (or doubles for Table I).
    pub x: u64,
    /// One value per series, aligned with [`Figure::series`].
    pub values: Vec<f64>,
}

/// A regenerated figure or table.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier ("fig6", "table1", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Meaning of `Row::x`.
    pub xlabel: String,
    /// Meaning of the values.
    pub ylabel: String,
    /// Series names, in `Row::values` order.
    pub series: Vec<String>,
    /// The sweep.
    pub rows: Vec<Row>,
    /// Paper anchor points ("paper: 5.83 us at 8192 procs", …) printed
    /// under the table for eyeball comparison.
    pub paper_anchors: Vec<String>,
}

/// Format a byte count like the paper's axes (1K, 64K, 4M).
pub fn fmt_size(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes.is_multiple_of(1 << 10) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

impl Figure {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        out.push_str(&format!("   ({} vs {})\n", self.ylabel, self.xlabel));
        let w = 28usize;
        out.push_str(&format!("{:>10}", self.xlabel));
        for s in &self.series {
            out.push_str(&format!("{s:>w$}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:>10}", fmt_size(row.x)));
            for v in &row.values {
                out.push_str(&format!("{v:>w$.2}"));
            }
            out.push('\n');
        }
        if !self.paper_anchors.is_empty() {
            out.push_str("-- paper anchors --\n");
            for a in &self.paper_anchors {
                out.push_str(&format!("  * {a}\n"));
            }
        }
        out
    }

    /// Print the table to stdout (binaries call this).
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// JSON serialization for downstream plotting.
    pub fn to_json(&self) -> String {
        let strings = |items: &[String]| -> String {
            items
                .iter()
                .map(|s| json::escape(s))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json::escape(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json::escape(&self.title)));
        out.push_str(&format!("  \"xlabel\": {},\n", json::escape(&self.xlabel)));
        out.push_str(&format!("  \"ylabel\": {},\n", json::escape(&self.ylabel)));
        out.push_str(&format!("  \"series\": [{}],\n", strings(&self.series)));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let vals = row
                .values
                .iter()
                .map(|&v| json::fmt_f64(v))
                .collect::<Vec<_>>();
            out.push_str(&format!(
                "    {{\"x\": {}, \"values\": [{}]}}{}\n",
                row.x,
                vals.join(", "),
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"paper_anchors\": [{}]\n",
            strings(&self.paper_anchors)
        ));
        out.push('}');
        out
    }

    /// Column index of a series by name.
    pub fn series_index(&self, name: &str) -> Option<usize> {
        self.series.iter().position(|s| s == name)
    }

    /// Value of `series` at x == `x`.
    pub fn value_at(&self, series: &str, x: u64) -> Option<f64> {
        let i = self.series_index(series)?;
        self.rows.iter().find(|r| r.x == x).map(|r| r.values[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        Figure {
            id: "figX".into(),
            title: "test".into(),
            xlabel: "bytes".into(),
            ylabel: "MB/s".into(),
            series: vec!["a".into(), "b".into()],
            rows: vec![
                Row {
                    x: 1024,
                    values: vec![1.0, 2.0],
                },
                Row {
                    x: 1 << 20,
                    values: vec![3.0, 4.0],
                },
            ],
            paper_anchors: vec!["anchor".into()],
        }
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(512), "512");
        assert_eq!(fmt_size(1024), "1K");
        assert_eq!(fmt_size(128 << 10), "128K");
        assert_eq!(fmt_size(4 << 20), "4M");
        assert_eq!(fmt_size(1500), "1500");
    }

    #[test]
    fn lookup_by_series_and_x() {
        let f = sample();
        assert_eq!(f.value_at("b", 1024), Some(2.0));
        assert_eq!(f.value_at("a", 1 << 20), Some(3.0));
        assert_eq!(f.value_at("c", 1024), None);
        assert_eq!(f.value_at("a", 7), None);
    }

    #[test]
    fn render_contains_everything() {
        let r = sample().render();
        assert!(r.contains("figX"));
        assert!(r.contains("1K"));
        assert!(r.contains("1M"));
        assert!(r.contains("anchor"));
    }

    #[test]
    fn json_round_trips_structurally() {
        let j = sample().to_json();
        let v = json::parse(&j).unwrap();
        assert_eq!(v.get("series").unwrap().as_arr().unwrap().len(), 2);
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("x").unwrap().as_f64(), Some(1024.0));
        assert_eq!(
            rows[1].get("values").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(4.0)
        );
        assert_eq!(v.get("id").unwrap().as_str(), Some("figX"));
    }
}
