//! Probe artifacts for the figure binaries.
//!
//! When a figure binary is run with `--trace`, it re-runs one
//! representative operation of its figure with the probe enabled and writes
//! two machine-readable files next to the report:
//!
//! * `BENCH_<id>_phases.json` — the per-phase breakdown (schema
//!   [`bgp_sim::TRACE_SCHEMA`]): per-phase busy and exclusive times, where
//!   the exclusive times partition the end-to-end operation time exactly.
//! * `BENCH_<id>_trace.json` — a `chrome://tracing` / Perfetto JSON trace
//!   of every recorded span (one `tid` per node; load it directly in either
//!   viewer).
//! * `BENCH_<id>_folded.txt` — the same spans in collapsed-stack format
//!   (`op;alg;node<N>;phase <ns>` per line), directly consumable by
//!   `inferno-flamegraph` and speedscope's collapsed importer.
//!
//! The traced run is separate from the measured sweep, so the figure's
//! numbers are never produced with recording on (recording does not change
//! simulated time, but keeping the runs apart makes that fact irrelevant).

use std::fs;
use std::io;
use std::path::PathBuf;

use bgp_machine::MachineConfig;
use bgp_mpi::allreduce::AllreduceAlgorithm;
use bgp_mpi::{BcastAlgorithm, Mpi};

/// Whether `--trace` was passed on the command line.
pub fn requested() -> bool {
    std::env::args().any(|a| a == "--trace")
}

/// The representative operation a figure's trace artifacts describe.
#[derive(Debug, Clone, Copy)]
pub enum TraceOp {
    /// One `MPI_Bcast` of the given size.
    Bcast(BcastAlgorithm, u64),
    /// One `MPI_Allreduce` of the given number of doubles.
    Allreduce(AllreduceAlgorithm, u64),
}

/// Run `op` on a fresh machine with the probe enabled and write the three
/// artifacts for figure `id`; returns `(phases_path, trace_path,
/// folded_path)`.
pub fn emit(id: &str, cfg: MachineConfig, op: TraceOp) -> io::Result<(PathBuf, PathBuf, PathBuf)> {
    let mut mpi = Mpi::new(cfg);
    mpi.enable_probe();
    match op {
        TraceOp::Bcast(alg, bytes) => {
            mpi.bcast(alg, bytes);
        }
        TraceOp::Allreduce(alg, doubles) => {
            mpi.allreduce(alg, doubles);
        }
    }
    let phases_path = PathBuf::from(format!("BENCH_{id}_phases.json"));
    let trace_path = PathBuf::from(format!("BENCH_{id}_trace.json"));
    let folded_path = PathBuf::from(format!("BENCH_{id}_folded.txt"));
    fs::write(&phases_path, mpi.breakdown().to_json())?;
    fs::write(&trace_path, mpi.chrome_trace())?;
    fs::write(&folded_path, mpi.collapsed())?;
    Ok((phases_path, trace_path, folded_path))
}

/// [`emit`] if `--trace` was requested, reporting the written paths on
/// stdout (what the figure binaries call after printing their table).
pub fn emit_if_requested(id: &str, cfg: MachineConfig, op: TraceOp) {
    if !requested() {
        return;
    }
    match emit(id, cfg, op) {
        Ok((p, t, f)) => println!(
            "trace: wrote {}, {} and {}",
            p.display(),
            t.display(),
            f.display()
        ),
        Err(e) => eprintln!("trace: failed to write artifacts: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_machine::OpMode;
    use bgp_sim::json;

    #[test]
    fn emit_writes_parseable_artifacts() {
        let dir = std::env::temp_dir().join("bgp_bench_trace_test");
        fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        // The artifact paths are cwd-relative; run the test in a temp dir.
        std::env::set_current_dir(&dir).unwrap();
        let cfg = MachineConfig::test_small(OpMode::Quad);
        let result = emit(
            "testfig",
            cfg,
            TraceOp::Bcast(BcastAlgorithm::TreeShaddr { caching: true }, 64 << 10),
        );
        std::env::set_current_dir(old).unwrap();
        let (p, t, f) = result.unwrap();
        let phases = fs::read_to_string(dir.join(&p)).unwrap();
        let trace = fs::read_to_string(dir.join(&t)).unwrap();
        let folded = fs::read_to_string(dir.join(&f)).unwrap();
        let pv = json::parse(&phases).unwrap();
        assert_eq!(
            pv.get("schema").unwrap().as_str(),
            Some(bgp_sim::TRACE_SCHEMA)
        );
        assert_eq!(pv.get("op").unwrap().as_str(), Some("bcast"));
        assert!(!pv.get("phases").unwrap().as_arr().unwrap().is_empty());
        let tv = json::parse(&trace).unwrap();
        assert!(tv.as_arr().unwrap().len() > 1);
        // The folded artifact follows the collapsed-stack format rules.
        assert!(!folded.is_empty());
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("space before count");
            assert!(count.parse::<u64>().is_ok(), "integer count: {line}");
            assert!(stack.contains(';'), "stack has frames: {line}");
        }
        fs::remove_file(dir.join(p)).ok();
        fs::remove_file(dir.join(t)).ok();
        fs::remove_file(dir.join(f)).ok();
    }
}
