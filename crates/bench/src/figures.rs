//! One function per paper experiment.
//!
//! Each returns a [`Figure`] with the same series the paper plots, produced
//! by the same microbenchmark protocol (Figure 5: barrier, then a timed
//! collective, averaged — the simulator is deterministic so one timed run
//! per point is exact).

use bgp_machine::{MachineConfig, OpMode};
use bgp_mpi::allreduce::{throughput_mb, AllreduceAlgorithm};
use bgp_mpi::{BcastAlgorithm, Mpi};

use crate::report::{Figure, Row};
use crate::Scale;

fn quad(scale: Scale) -> Mpi {
    Mpi::new(MachineConfig::with_nodes(scale.nodes(), OpMode::Quad))
}

fn smp(scale: Scale) -> Mpi {
    Mpi::new(MachineConfig::with_nodes(scale.nodes(), OpMode::Smp))
}

fn pow2_sizes(from: u64, to: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = from;
    while s <= to {
        v.push(s);
        s *= 2;
    }
    v
}

fn mbps(bytes: u64, t: bgp_sim::SimTime) -> f64 {
    bytes as f64 / t.as_secs_f64() / 1e6
}

/// Figure 6 — latency of `MPI_Bcast` over the collective network, short
/// messages: `CollectiveNetwork+Shmem`, `CollectiveNetwork+DMA FIFO`, and
/// the SMP-mode reference. Values in microseconds.
pub fn fig6(scale: Scale) -> Figure {
    let sizes = pow2_sizes(1, 1024);
    let mut q = quad(scale);
    let mut s = smp(scale);
    let rows = sizes
        .iter()
        .map(|&b| Row {
            x: b,
            values: vec![
                q.bcast(BcastAlgorithm::TreeShmem, b).as_micros_f64(),
                q.bcast(BcastAlgorithm::TreeDmaFifo, b).as_micros_f64(),
                s.bcast(BcastAlgorithm::TreeSmp, b).as_micros_f64(),
            ],
        })
        .collect();
    Figure {
        id: "fig6".into(),
        title: "Latency of MPI_Bcast (collective network, short messages)".into(),
        xlabel: "bytes".into(),
        ylabel: "latency (us)".into(),
        series: vec![
            "CollectiveNetwork+Shmem".into(),
            "CollectiveNetwork+DMA FIFO".into(),
            "CollectiveNetwork (SMP)".into(),
        ],
        rows,
        paper_anchors: vec![
            "paper: Shmem = 5.83 us for the 8192-process broadcast".into(),
            "paper: Shmem adds 0.42 us over the SMP hardware broadcast".into(),
            "paper: DMA FIFO is considerably slower than Shmem".into(),
        ],
    }
}

/// Figure 7 — bandwidth of `MPI_Bcast` over the collective network, medium
/// messages: `Shaddr` (core specialization) vs the DMA baselines and SMP.
pub fn fig7(scale: Scale) -> Figure {
    let sizes = pow2_sizes(8 << 10, 4 << 20);
    let mut q = quad(scale);
    let mut s = smp(scale);
    let rows = sizes
        .iter()
        .map(|&b| Row {
            x: b,
            values: vec![
                mbps(b, q.bcast(BcastAlgorithm::TreeShaddr { caching: true }, b)),
                mbps(b, q.bcast(BcastAlgorithm::TreeDmaFifo, b)),
                mbps(b, q.bcast(BcastAlgorithm::TreeDmaDirectPut, b)),
                mbps(b, s.bcast(BcastAlgorithm::TreeSmp, b)),
            ],
        })
        .collect();
    Figure {
        id: "fig7".into(),
        title: "Bandwidth of MPI_Bcast (collective network)".into(),
        xlabel: "bytes".into(),
        ylabel: "bandwidth (MB/s)".into(),
        series: vec![
            "CollectiveNetwork+Shaddr".into(),
            "CollectiveNetwork+DMA FIFO".into(),
            "CollectiveNetwork+DMA Direct Put".into(),
            "CollectiveNetwork (SMP)".into(),
        ],
        rows,
        paper_anchors: vec![
            "paper: Shaddr outperforms all QUAD-mode algorithms".into(),
            "paper: up to 45% improvement at 128K vs the DMA schemes".into(),
            "paper: SMP reference saturates the 850 MB/s tree".into(),
        ],
    }
}

/// Figure 8 — system-call overhead: `Shaddr` with and without the
/// window-mapping cache.
pub fn fig8(scale: Scale) -> Figure {
    let sizes = pow2_sizes(2 << 10, 4 << 20);
    let mut q = quad(scale);
    let rows = sizes
        .iter()
        .map(|&b| Row {
            x: b,
            values: vec![
                mbps(b, q.bcast(BcastAlgorithm::TreeShaddr { caching: true }, b)),
                mbps(b, q.bcast(BcastAlgorithm::TreeShaddr { caching: false }, b)),
            ],
        })
        .collect();
    Figure {
        id: "fig8".into(),
        title: "Overhead of process-window system calls (Shaddr bcast)".into(),
        xlabel: "bytes".into(),
        ylabel: "bandwidth (MB/s)".into(),
        series: vec![
            "CollectiveNetwork+Shaddr+caching".into(),
            "CollectiveNetwork+Shaddr+nocaching".into(),
        ],
        rows,
        paper_anchors: vec![
            "paper: repeated syscalls are a big overhead; caching the buffer mapping removes it"
                .into(),
            "paper: the gap is largest for small/medium messages and closes at multi-MB sizes"
                .into(),
        ],
    }
}

/// Figure 9 — `Shaddr` tree-broadcast bandwidth at 1024/2048/4096/8192
/// processes: the collective network scales flat.
pub fn fig9() -> Figure {
    let sizes = pow2_sizes(8 << 10, 4 << 20);
    let procs = [1024u32, 2048, 4096, 8192];
    let mut mpis: Vec<Mpi> = procs
        .iter()
        .map(|&p| Mpi::new(MachineConfig::with_nodes(p / 4, OpMode::Quad)))
        .collect();
    let rows = sizes
        .iter()
        .map(|&b| Row {
            x: b,
            values: mpis
                .iter_mut()
                .map(|m| mbps(b, m.bcast(BcastAlgorithm::TreeShaddr { caching: true }, b)))
                .collect(),
        })
        .collect();
    Figure {
        id: "fig9".into(),
        title: "Shaddr bcast bandwidth with increasing scale".into(),
        xlabel: "bytes".into(),
        ylabel: "bandwidth (MB/s)".into(),
        series: procs
            .iter()
            .map(|p| format!("CollectiveNetwork+Shaddr({p})"))
            .collect(),
        rows,
        paper_anchors: vec![
            "paper: the algorithm scales well across process configurations (curves overlap)"
                .into(),
        ],
    }
}

/// Figure 10 — bandwidth of `MPI_Bcast` over the torus, large messages:
/// `Torus+Shaddr`, `Torus+FIFO`, `Torus Direct Put`, and the SMP reference.
pub fn fig10(scale: Scale) -> Figure {
    let sizes = pow2_sizes(64 << 10, 4 << 20);
    let mut q = quad(scale);
    let mut s = smp(scale);
    let rows = sizes
        .iter()
        .map(|&b| Row {
            x: b,
            values: vec![
                mbps(b, q.bcast(BcastAlgorithm::TorusShaddr, b)),
                mbps(b, q.bcast(BcastAlgorithm::TorusFifo, b)),
                mbps(b, q.bcast(BcastAlgorithm::TorusDirectPut, b)),
                mbps(b, s.bcast(BcastAlgorithm::TorusDirectPut, b)),
            ],
        })
        .collect();
    Figure {
        id: "fig10".into(),
        title: "Bandwidth of MPI_Bcast (torus, large messages)".into(),
        xlabel: "bytes".into(),
        ylabel: "bandwidth (MB/s)".into(),
        series: vec![
            "Torus+Shaddr".into(),
            "Torus+FIFO".into(),
            "Torus Direct Put".into(),
            "Torus Direct Put(SMP)".into(),
        ],
        rows,
        paper_anchors: vec![
            "paper: Shaddr reaches 2.9x over Direct Put at 2M".into(),
            "paper: FIFO reaches 1.4x over Direct Put at 2M".into(),
            "paper: Shaddr is within 15% of the SMP peak at 64K".into(),
            "paper: performance drops at the top end (8 MB L2 exceeded)".into(),
        ],
    }
}

/// Table I — allreduce throughput (sum of doubles): the core-specialized
/// shared-address scheme vs the current DMA ring.
pub fn table1(scale: Scale) -> Figure {
    let doubles = [
        16u64 << 10,
        32 << 10,
        64 << 10,
        128 << 10,
        256 << 10,
        512 << 10,
    ];
    let cfg = MachineConfig::with_nodes(scale.nodes(), OpMode::Quad);
    let rows = doubles
        .iter()
        .map(|&d| {
            let mut m1 = bgp_dcmf::Machine::new(cfg.clone());
            let mut m2 = bgp_dcmf::Machine::new(cfg.clone());
            Row {
                x: d,
                values: vec![
                    throughput_mb(&mut m1, AllreduceAlgorithm::ShaddrSpecialized, d),
                    throughput_mb(&mut m2, AllreduceAlgorithm::RingCurrent, d),
                ],
            }
        })
        .collect();
    Figure {
        id: "table1".into(),
        title: "Allreduce throughput (doubles, sum)".into(),
        xlabel: "doubles".into(),
        ylabel: "throughput (MB/s)".into(),
        series: vec!["New (MB/s)".into(), "Current (MB/s)".into()],
        rows,
        paper_anchors: vec![
            "paper: ~33% improvement for 512K doubles".into(),
            "paper: benefits across sizes, mostly useful for large messages".into(),
        ],
    }
}

/// Ablation — pipeline width sweep for the torus Shaddr broadcast.
pub fn ablation_pwidth(scale: Scale) -> Figure {
    let widths = [
        512u32,
        1 << 10,
        2 << 10,
        4 << 10,
        8 << 10,
        16 << 10,
        32 << 10,
        64 << 10,
        128 << 10,
    ];
    let bytes = 2u64 << 20;
    let rows = widths
        .iter()
        .map(|&w| {
            let mut cfg = MachineConfig::with_nodes(scale.nodes(), OpMode::Quad);
            cfg.sw.pwidth = w;
            let mut mpi = Mpi::new(cfg);
            Row {
                x: w as u64,
                values: vec![mbps(bytes, mpi.bcast(BcastAlgorithm::TorusShaddr, bytes))],
            }
        })
        .collect();
    Figure {
        id: "ablation_pwidth".into(),
        title: "Pwidth sweep: torus Shaddr bcast of 2M".into(),
        xlabel: "pwidth".into(),
        ylabel: "bandwidth (MB/s)".into(),
        series: vec!["Torus+Shaddr(2M)".into()],
        rows,
        paper_anchors: vec![
            "design: small Pwidth = more sync overhead; large Pwidth = worse pipelining".into(),
        ],
    }
}

/// Ablation — Bcast FIFO slot size sweep.
pub fn ablation_fifo(scale: Scale) -> Figure {
    let slots = [256u32, 512, 1024, 2048, 4096, 8192];
    let bytes = 2u64 << 20;
    let rows = slots
        .iter()
        .map(|&s| {
            let mut cfg = MachineConfig::with_nodes(scale.nodes(), OpMode::Quad);
            cfg.sw.fifo_slot_bytes = s;
            let mut mpi = Mpi::new(cfg);
            Row {
                x: s as u64,
                values: vec![mbps(bytes, mpi.bcast(BcastAlgorithm::TorusFifo, bytes))],
            }
        })
        .collect();
    Figure {
        id: "ablation_fifo".into(),
        title: "Bcast FIFO slot-size sweep: torus FIFO bcast of 2M".into(),
        xlabel: "slot bytes".into(),
        ylabel: "bandwidth (MB/s)".into(),
        series: vec!["Torus+FIFO(2M)".into()],
        rows,
        paper_anchors: vec![
            "design: per-slot atomic costs amortize with slot size until copies dominate".into(),
        ],
    }
}

/// Ablation — color count: the same broadcast on 1D/2D/3D tori shows the
/// per-direction link aggregation (2/4/6 × 425 MB/s) the multi-color
/// schedule is built to harvest.
pub fn ablation_colors() -> Figure {
    use bgp_machine::geometry::Dims;
    let bytes = 4u64 << 20;
    let shapes: [(&str, Dims, f64); 3] = [
        ("1D x64 (2 colors)", Dims::new(64, 1, 1), 850.0),
        ("2D 8x8 (4 colors)", Dims::new(8, 8, 1), 1700.0),
        ("3D 4x4x4 (6 colors)", Dims::new(4, 4, 4), 2550.0),
    ];
    let rows = shapes
        .iter()
        .enumerate()
        .map(|(i, (_, dims, _))| {
            let mut cfg = MachineConfig::test_small(OpMode::Smp);
            cfg.dims = *dims;
            let mut mpi = Mpi::new(cfg);
            Row {
                x: (i as u64 + 1) * 2, // the color count
                values: vec![mbps(
                    bytes,
                    mpi.bcast(BcastAlgorithm::TorusDirectPut, bytes),
                )],
            }
        })
        .collect();
    Figure {
        id: "ablation_colors".into(),
        title: "Color-count ablation: SMP torus bcast of 4M".into(),
        xlabel: "colors".into(),
        ylabel: "bandwidth (MB/s)".into(),
        series: vec!["Torus Direct Put (SMP)".into()],
        rows,
        paper_anchors: vec![
            "design: aggregate bandwidth scales with edge-disjoint colors (x425 MB/s each)".into(),
        ],
    }
}

/// Extension — the §VII future work: `MPI_Allgather` with the paper's
/// mechanisms vs the DMA-driven pattern.
pub fn ext_allgather(scale: Scale) -> Figure {
    use bgp_mpi::allgather::{allgather_throughput_mb, AllgatherAlgorithm};
    let blocks = [1u64 << 10, 4 << 10, 16 << 10, 64 << 10];
    let cfg = MachineConfig::with_nodes(scale.nodes().min(256), OpMode::Quad);
    let rows = blocks
        .iter()
        .map(|&b| {
            let mut m1 = bgp_dcmf::Machine::new(cfg.clone());
            let mut m2 = bgp_dcmf::Machine::new(cfg.clone());
            Row {
                x: b,
                values: vec![
                    allgather_throughput_mb(&mut m1, AllgatherAlgorithm::ShaddrSpecialized, b),
                    allgather_throughput_mb(&mut m2, AllgatherAlgorithm::RingCurrent, b),
                ],
            }
        })
        .collect();
    Figure {
        id: "ext_allgather".into(),
        title: "Extension (paper §VII): MPI_Allgather throughput".into(),
        xlabel: "block bytes/rank".into(),
        ylabel: "aggregate throughput (MB/s)".into(),
        series: vec!["Shaddr-specialized".into(), "Current (DMA ring)".into()],
        rows,
        paper_anchors: vec![
            "paper §VII: 'we intend to extend the mechanism to MPI_Gather and MPI_Allgather'"
                .into(),
        ],
    }
}

/// The crossover exhibit: every quad-mode broadcast path across the full
/// size range plus the production selection's pick - the evidence behind
/// `select_bcast`'s thresholds.
pub fn crossover(scale: Scale) -> Figure {
    let sizes = pow2_sizes(64, 4 << 20);
    let cfg = MachineConfig::with_nodes(scale.nodes(), OpMode::Quad);
    let algs = [
        BcastAlgorithm::TreeShmem,
        BcastAlgorithm::TreeShaddr { caching: true },
        BcastAlgorithm::TorusShaddr,
    ];
    // Per-path columns come from the shared sweep engine (the same
    // measurements the autotuner consumes); the "selected" column replays
    // the production tuned path.
    let sweep = bgp_tune::sweep::sweep_bcast(&cfg, &algs, &sizes);
    let mut q = quad(scale);
    let rows = sweep
        .sizes
        .iter()
        .zip(&sweep.micros)
        .map(|(&b, row)| {
            let mut values = row.clone();
            let (picked, t) = q.bcast_auto(b);
            values.push(t.as_micros_f64());
            // Encode the picked algorithm as an index for the JSON side.
            values.push(match picked {
                BcastAlgorithm::TreeShmem => 0.0,
                BcastAlgorithm::TreeShaddr { .. } => 1.0,
                _ => 2.0,
            });
            Row { x: b, values }
        })
        .collect();
    Figure {
        id: "crossover".into(),
        title: "Algorithm crossover: latency of each path + the selected one".into(),
        xlabel: "bytes".into(),
        ylabel: "latency (us)".into(),
        series: vec![
            "Tree+Shmem".into(),
            "Tree+Shaddr".into(),
            "Torus+Shaddr".into(),
            "selected".into(),
            "selected index (0/1/2)".into(),
        ],
        rows,
        paper_anchors: vec![
            "paper SV: 'depending on the message size, either the Torus or the Collective network based algorithms perform optimally'".into(),
        ],
    }
}

/// Extension - MPI_Reduce and MPI_Gather with the paper's mechanisms vs
/// the DMA-driven patterns (one ring pass; root-ingress-bound gather).
pub fn ext_reduce_gather(scale: Scale) -> Figure {
    use bgp_mpi::allreduce::AllreduceAlgorithm;
    let sizes = [16u64 << 10, 64 << 10, 256 << 10, 512 << 10];
    let mut mpi = Mpi::new(MachineConfig::with_nodes(
        scale.nodes().min(256),
        OpMode::Quad,
    ));
    let rows = sizes
        .iter()
        .map(|&doubles| {
            let bytes = doubles * 8;
            let rn = mpi.reduce(AllreduceAlgorithm::ShaddrSpecialized, doubles);
            let rc = mpi.reduce(AllreduceAlgorithm::RingCurrent, doubles);
            Row {
                x: doubles,
                values: vec![
                    bytes as f64 / rn.as_secs_f64() / 1e6,
                    bytes as f64 / rc.as_secs_f64() / 1e6,
                ],
            }
        })
        .collect();
    Figure {
        id: "ext_reduce".into(),
        title: "Extension: MPI_Reduce throughput (doubles, sum to root)".into(),
        xlabel: "doubles".into(),
        ylabel: "throughput (MB/s)".into(),
        series: vec!["New (MB/s)".into(), "Current (MB/s)".into()],
        rows,
        paper_anchors: vec![
            "derived: allreduce minus the broadcast pass - the same core-specialization gain"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // All shape tests run at Small scale to stay fast in debug builds; the
    // integration suite re-checks the headline ratios, and the binaries
    // regenerate the Paper scale.

    #[test]
    fn fig6_shape() {
        let f = fig6(Scale::Small);
        assert_eq!(f.rows.len(), 11); // 1..1024
        for r in &f.rows {
            let shmem = r.values[0];
            let fifo = r.values[1];
            let smp = r.values[2];
            assert!(smp < shmem, "SMP must be fastest at {}", r.x);
            assert!(shmem < fifo, "Shmem must beat DMA FIFO at {}", r.x);
        }
    }

    #[test]
    fn fig7_shape() {
        let f = fig7(Scale::Small);
        let last = f.rows.last().unwrap();
        let (sh, fifo, dp, smp) = (
            last.values[0],
            last.values[1],
            last.values[2],
            last.values[3],
        );
        assert!(
            sh > dp && dp >= fifo,
            "sh={sh:.0} dp={dp:.0} fifo={fifo:.0}"
        );
        assert!(smp >= sh * 0.95);
    }

    #[test]
    fn fig8_shape() {
        let f = fig8(Scale::Small);
        for r in &f.rows {
            assert!(
                r.values[0] >= r.values[1] * 0.999,
                "caching must not lose at {}",
                r.x
            );
        }
        // Relative gap shrinks with size.
        let first = &f.rows[0];
        let last = f.rows.last().unwrap();
        let gap_small = first.values[0] / first.values[1];
        let gap_large = last.values[0] / last.values[1];
        assert!(
            gap_small > gap_large,
            "gap_small={gap_small} gap_large={gap_large}"
        );
    }

    #[test]
    fn fig10_shape() {
        let f = fig10(Scale::Small);
        let at_2m = f.rows.iter().find(|r| r.x == 2 << 20).unwrap();
        let (sh, fifo, dp, smp) = (
            at_2m.values[0],
            at_2m.values[1],
            at_2m.values[2],
            at_2m.values[3],
        );
        assert!(
            sh > fifo && fifo > dp,
            "sh={sh:.0} fifo={fifo:.0} dp={dp:.0}"
        );
        assert!((2.3..3.5).contains(&(sh / dp)), "speedup {}", sh / dp);
        assert!(smp >= sh * 0.95);
    }

    #[test]
    fn table1_shape() {
        let f = table1(Scale::Small);
        for r in &f.rows {
            assert!(r.values[0] > r.values[1], "new must win at {} doubles", r.x);
        }
    }

    #[test]
    fn color_ablation_scales_with_colors() {
        let f = ablation_colors();
        let v: Vec<f64> = f.rows.iter().map(|r| r.values[0]).collect();
        assert!(v[1] > v[0] * 1.6, "2D should ~double 1D: {v:?}");
        assert!(v[2] > v[1] * 1.2, "3D should beat 2D: {v:?}");
    }

    #[test]
    fn allgather_extension_shape() {
        let f = ext_allgather(Scale::Small);
        for r in &f.rows {
            assert!(r.values[0] > r.values[1], "new must win at block {}", r.x);
        }
    }

    #[test]
    fn crossover_selection_is_never_worse_than_25_percent() {
        // The selected algorithm should be at or near the per-size optimum.
        // The thresholds are calibrated for the paper-scale machine; on the
        // Small machine the torus is so shallow that it wins much earlier,
        // so only the large-message regime has a scale-independent winner.
        let f = crossover(Scale::Small);
        for r in &f.rows {
            let best = r.values[..3].iter().cloned().fold(f64::MAX, f64::min);
            let picked = r.values[3];
            assert!(picked > 0.0 && picked.is_finite());
            if r.x >= 1 << 20 {
                assert!(
                    picked <= best * 1.25 + 1.0,
                    "selection at {} bytes: picked {picked:.1}us, best {best:.1}us",
                    r.x
                );
            }
        }
    }

    #[test]
    fn reduce_extension_shape() {
        let f = ext_reduce_gather(Scale::Small);
        for r in &f.rows {
            assert!(r.values[0] > r.values[1], "new must win at {} doubles", r.x);
        }
    }

    #[test]
    fn ablations_produce_curves() {
        let p = ablation_pwidth(Scale::Small);
        assert_eq!(p.rows.len(), 9);
        // The Pwidth U-shape: the 2-4K region beats both extremes.
        let best = p.rows.iter().map(|r| r.values[0]).fold(0.0, f64::max);
        let first = p.rows[0].values[0];
        let last = p.rows.last().unwrap().values[0];
        assert!(best > first, "tiny Pwidth should pay sync overhead");
        assert!(best > last, "huge Pwidth should pay pipelining loss");
        let fif = ablation_fifo(Scale::Small);
        assert_eq!(fif.rows.len(), 6);
        // FIFO throughput rises with slot size (amortized atomics).
        assert!(fif.rows.last().unwrap().values[0] > fif.rows[0].values[0]);
    }
}
