//! # bgp-ccmi — the collective framework
//!
//! Named for BG/P's Component Collective Messaging Interface, the framework
//! layer the paper's algorithms are registered in. It owns the *schedules*
//! and *executors*; the per-algorithm intra-node stages are supplied by
//! `bgp-mpi` as closures.
//!
//! * [`chunking`] — splitting a message across colors and into `Pwidth`
//!   pipeline chunks.
//! * [`torus`] — the event-driven executor for multi-color spanning-tree
//!   broadcast over the torus: every line broadcast of every phase of every
//!   color becomes reservations on link/DMA/memory servers, with per-chunk
//!   dependencies (a node forwards chunk *k* only after receiving chunk
//!   *k*), and a pluggable intra-node distribution stage invoked at every
//!   node per chunk.
//! * [`tree`] — the exact reduced executor for collective-network
//!   operations: because tree channels are per-node (replication happens in
//!   the switches) there is no cross-node contention, so simulating the
//!   root plus the deepest witness node with full per-chunk pipelines is
//!   exact for completion time.
//! * [`barrier`] — the global-interrupt barrier cost.

pub mod barrier;
pub mod chunking;
pub mod torus;
pub mod tree;

pub use chunking::{
    chunk_sizes, chunk_spans, color_shares, color_spans, spans_cover_exactly, Span,
};
pub use torus::{run_torus_bcast, BcastOutcome, IntraStage, TorusBcastSpec};
pub use tree::{run_tree_collective, TreeSpec, TreeStages};
