//! The multi-color torus broadcast executor.
//!
//! Drives the full machine, event by event: the root launches every pipeline
//! chunk of every color; each deposit-bit line transfer produces per-node
//! arrival events; an arriving node forwards the chunk on every line it
//! sources (later phases of the color's spanning tree) and runs the
//! pluggable *intra-node stage* (how the chunk reaches the node's other
//! ranks — the thing the paper's algorithms differ in).
//!
//! All bandwidth contention — links, each node's DMA engine, memory system and
//! cores — flows through the `bgp-sim` servers reserved by the `bgp-dcmf`
//! ops, so baselines and proposed schemes compete under identical rules.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bgp_dcmf::{ops, Machine, Sim};
use bgp_machine::geometry::Direction;
use bgp_machine::geometry::NodeId;
use bgp_machine::routing::{color_routes, nr_schedule, LineBcast};
use bgp_sim::SimTime;

use crate::chunking::{chunk_sizes, chunk_spans, color_spans, spans_cover_exactly, Span};

/// The intra-node distribution stage: invoked at `node` when `bytes` of a
/// chunk have landed in the master rank's reception buffer at time `now`;
/// returns when every rank of the node has the chunk.
pub type IntraStage = Rc<dyn Fn(&mut Machine, SimTime, NodeId, u64) -> SimTime>;

/// An intra-node stage that does nothing (SMP mode: one rank per node).
pub fn identity_stage() -> IntraStage {
    Rc::new(|_m, now, _node, _bytes| now)
}

/// Parameters of one torus broadcast.
#[derive(Debug, Clone)]
pub struct TorusBcastSpec {
    /// The broadcast root node.
    pub root: NodeId,
    /// Message size in bytes.
    pub bytes: u64,
    /// Pipeline width (the paper's `Pwidth`).
    pub pwidth: u64,
    /// Resident footprint for L2-cliff rate selection (algorithm-specific;
    /// e.g. `(ranks per node) × bytes` for quad-mode direct copies).
    pub working_set: u64,
}

/// What the executor observed.
#[derive(Debug, Clone)]
pub struct BcastOutcome {
    /// Time every rank of every node has the full message (incl. the MPI
    /// dispatch overhead at the start).
    pub completion: SimTime,
    /// Network bytes delivered per node — each non-root node must equal the
    /// message size (payload-coverage verification).
    pub delivered: Vec<u64>,
    /// Per node: the exact `(offset, len)` spans received off the network.
    /// [`BcastOutcome::coverage_exact`] checks they tile `[0, bytes)` with
    /// no gap, overlap, or duplicate — the functional-correctness check a
    /// byte count cannot provide.
    pub spans: Vec<Vec<Span>>,
    /// Events executed (diagnostic).
    pub events: u64,
}

impl BcastOutcome {
    /// Whether every node received a disjoint exact cover of the message.
    pub fn coverage_exact(&self, bytes: u64) -> bool {
        self.spans
            .iter()
            .all(|s| spans_cover_exactly(s.clone(), bytes))
    }
}

struct State {
    root: NodeId,
    /// Per color: lines sourced by each node (across all phases).
    sources: Vec<HashMap<NodeId, Vec<LineBcast>>>,
    /// Per color: the direction class carrying its delivery load.
    charge_dirs: Vec<Direction>,
    intra: IntraStage,
    working_set: u64,
    track: RefCell<Track>,
}

struct Track {
    completion: SimTime,
    delivered: Vec<u64>,
    spans: Vec<Vec<Span>>,
}

/// Run one torus broadcast to completion on a fresh engine.
///
/// The machine's servers are *not* reset first — the caller decides whether
/// the operation starts from a quiet machine (the microbenchmark barriers
/// between iterations, so the harness resets).
pub fn run_torus_bcast(m: &mut Machine, spec: &TorusBcastSpec, intra: IntraStage) -> BcastOutcome {
    let dims = m.cfg.dims;
    let n_nodes = dims.node_count() as usize;
    let routes = color_routes(dims, m.cfg.wrap);
    let t0 = m.cfg.sw.mpi_overhead();

    // Degenerate single-node machine: only the intra-node stage runs.
    if routes.is_empty() {
        let mut done = t0;
        for c in chunk_sizes(spec.bytes, spec.pwidth) {
            done = done.max(intra(m, t0, spec.root, c));
        }
        return BcastOutcome {
            completion: done,
            delivered: vec![spec.bytes],
            spans: vec![vec![(0, spec.bytes)]],
            events: 0,
        };
    }

    let root_coord = dims.coord_of(spec.root);
    // The neighbor-rooted (edge-disjoint) schedule per color.
    let schedules: Vec<_> = routes
        .iter()
        .map(|route| nr_schedule(dims, root_coord, route))
        .collect();
    let sources: Vec<HashMap<NodeId, Vec<LineBcast>>> = schedules
        .iter()
        .map(|sched| {
            let mut map: HashMap<NodeId, Vec<LineBcast>> = HashMap::new();
            for phase in &sched.phases {
                for lb in phase {
                    map.entry(dims.id_of(lb.from)).or_default().push(*lb);
                }
            }
            map
        })
        .collect();
    let charge_dirs: Vec<Direction> = schedules.iter().map(|s| s.hop_dir).collect();

    let st = Rc::new(State {
        root: spec.root,
        sources,
        charge_dirs,
        intra,
        working_set: spec.working_set,
        track: RefCell::new(Track {
            completion: t0,
            delivered: vec![0; n_nodes],
            spans: vec![Vec::new(); n_nodes],
        }),
    });

    let mut eng: Sim = Sim::new();
    let shares = color_spans(spec.bytes, routes.len());
    // The root has the whole message at t0, but work must enter the servers
    // in causal time order (the FIFO-server rule), so each color runs two
    // chained streams from the root: the phase-0 unicast chain (chunk k+1
    // launches when the DMA finished injecting chunk k towards the relay)
    // and the intra-node chain (the root's peers copy chunk k+1 after
    // finishing chunk k).
    for (color, &(start, share)) in shares.iter().enumerate() {
        let chunks = chunk_spans(start, share, spec.pwidth);
        if chunks.is_empty() {
            continue;
        }
        let root = spec.root;
        {
            let st2 = st.clone();
            let chunks2 = chunks.clone();
            eng.schedule_at(t0, move |m, eng| {
                root_hop_step(m, eng, &st2, color, chunks2, 0, root);
            });
        }
        let st2 = st.clone();
        eng.schedule_at(t0, move |m, eng| {
            root_intra_step(m, eng, &st2, chunks, 0, root);
        });
    }
    eng.run(m);

    let track = st.track.borrow();
    // The root's redundant copies also arrive as exact spans; give the
    // root's own data a synthetic full-cover entry is NOT needed — it
    // receives every color's spans like everyone else.
    BcastOutcome {
        completion: track.completion,
        delivered: track.delivered.clone(),
        spans: track.spans.clone(),
        events: eng.events_executed(),
    }
}

/// Root phase-0 chain for one color: unicast chunk `k` one hop to the
/// color's relay, then chain chunk `k+1` at the injection-complete time.
/// The relay's arrival event (like every arrival) forwards the chunk on the
/// lines the relay sources.
fn root_hop_step(
    m: &mut Machine,
    eng: &mut Sim,
    st: &Rc<State>,
    color: usize,
    chunks: Vec<Span>,
    k: usize,
    root: NodeId,
) {
    let now = eng.now();
    let span = chunks[k];
    let dir = st.charge_dirs[color];
    let (inj_done, arrival) = ops::hop_transfer(m, now, root, dir, span.1, st.working_set);
    let relay = m.node_at(m.cfg.dims.neighbor(m.coord(root), dir));
    schedule_arrivals(eng, st, color, span, vec![(relay, arrival)]);
    if k + 1 < chunks.len() {
        let st2 = st.clone();
        eng.schedule_at(inj_done, move |m, eng| {
            root_hop_step(m, eng, &st2, color, chunks, k + 1, root);
        });
    }
}

/// Root intra-node chain for one color: the root's node peers copy the
/// chunks out of the root rank's buffer as a pipelined stream.
fn root_intra_step(
    m: &mut Machine,
    eng: &mut Sim,
    st: &Rc<State>,
    chunks: Vec<Span>,
    k: usize,
    root: NodeId,
) {
    let now = eng.now();
    let done = (st.intra)(m, now, root, chunks[k].1);
    m.probe.record("intra_stage", root.0, now, done);
    {
        let mut tr = st.track.borrow_mut();
        tr.completion = tr.completion.max(done);
    }
    if k + 1 < chunks.len() {
        let st2 = st.clone();
        eng.schedule_at(done.max(now), move |m, eng| {
            root_intra_step(m, eng, &st2, chunks, k + 1, root);
        });
    }
}

fn schedule_arrivals(
    eng: &mut Sim,
    st: &Rc<State>,
    color: usize,
    span: Span,
    arrivals: Vec<(NodeId, SimTime)>,
) {
    // Two-step delivery: at the wire time the destination charges its DMA
    // reception; the chunk is usable (and forwardable) once that completes.
    for (dst, wire) in arrivals {
        let st2 = st.clone();
        eng.schedule_at(wire, move |m, eng| {
            let arr = ops::dma_recv(m, eng.now(), dst, span.1, st2.working_set);
            let st3 = st2.clone();
            eng.schedule_at(arr, move |m, eng| {
                on_chunk(m, eng, &st3, color, span, dst);
            });
        });
    }
}

/// Non-root `node` received one `bytes`-sized chunk of `color` as of
/// `eng.now()`: account it, distribute it intra-node, and forward it on
/// every line this node sources for this color.
fn on_chunk(
    m: &mut Machine,
    eng: &mut Sim,
    st: &Rc<State>,
    color: usize,
    span: Span,
    node: NodeId,
) {
    let now = eng.now();
    let bytes = span.1;
    {
        let mut track = st.track.borrow_mut();
        track.delivered[node.idx()] += bytes;
        track.spans[node.idx()].push(span);
        // The root's intra-node distribution runs from t0 out of the root
        // rank's own buffer (root_intra_step); its redundant network copy
        // needs no further processing.
        let done = if node == st.root {
            now
        } else {
            let done = (st.intra)(m, now, node, bytes);
            m.probe.count("torus_chunks", 1);
            m.probe.record("intra_stage", node.0, now, done);
            done
        };
        track.completion = track.completion.max(done);
    }
    // Forward on every line this node sources for this color (the later
    // phases of the spanning tree).
    if let Some(lines) = st.sources[color].get(&node) {
        let lines = lines.clone();
        let charge = st.charge_dirs[color];
        for lb in lines {
            let d = ops::line_transfer(m, now, lb, charge, bytes, st.working_set);
            schedule_arrivals(eng, st, color, span, d.arrivals);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_machine::{MachineConfig, OpMode};
    use bgp_sim::Rate;

    fn machine(mode: OpMode) -> Machine {
        Machine::new(MachineConfig::test_small(mode))
    }

    fn spec(bytes: u64) -> TorusBcastSpec {
        TorusBcastSpec {
            root: NodeId(0),
            bytes,
            pwidth: 64 * 1024,
            working_set: bytes,
        }
    }

    #[test]
    fn every_node_receives_every_byte() {
        let mut m = machine(OpMode::Smp);
        let out = run_torus_bcast(&mut m, &spec(1 << 20), identity_stage());
        // Every node, including the root (which gets a redundant copy from
        // the final phases), receives the full message off the network.
        for (i, &d) in out.delivered.iter().enumerate() {
            assert_eq!(d, 1 << 20, "node {i} incomplete");
        }
    }

    #[test]
    fn every_node_receives_with_nonzero_root() {
        let mut m = machine(OpMode::Smp);
        let mut s = spec(300_000);
        s.root = NodeId(37);
        let out = run_torus_bcast(&mut m, &s, identity_stage());
        for (i, &d) in out.delivered.iter().enumerate() {
            assert_eq!(d, 300_000, "node {i}");
        }
    }

    #[test]
    fn smp_large_message_bandwidth_approaches_six_links() {
        // 6-color broadcast on a 4x4x4 torus: asymptotic delivered
        // bandwidth should approach 6 x 425 = 2550 MB/s (paper §V-A).
        let mut m = machine(OpMode::Smp);
        let bytes = 8 << 20;
        let out = run_torus_bcast(&mut m, &spec(bytes), identity_stage());
        let bw = Rate::observed(bytes, out.completion)
            .unwrap()
            .as_mb_per_sec();
        assert!(bw > 2000.0, "bandwidth too low: {bw} MB/s");
        assert!(bw < 2551.0, "bandwidth above physical peak: {bw} MB/s");
    }

    #[test]
    fn small_message_is_latency_dominated() {
        let mut m = machine(OpMode::Smp);
        let out = run_torus_bcast(&mut m, &spec(1024), identity_stage());
        // Dispatch + a few line hops; must be well under 100 us but above
        // the bare MPI overhead.
        assert!(out.completion > m.cfg.sw.mpi_overhead());
        assert!(out.completion < SimTime::from_micros(100));
    }

    #[test]
    fn coverage_is_an_exact_tiling_at_every_node() {
        // Stronger than byte counts: the spans each node receives must
        // tile [0, bytes) exactly - no gap, no overlap, no duplicate.
        let mut m = machine(OpMode::Quad);
        let bytes = 1_234_567u64;
        let out = run_torus_bcast(&mut m, &spec(bytes), identity_stage());
        assert!(out.coverage_exact(bytes));
        // And a deliberately broken span set must fail the check.
        let mut bad = out.spans.clone();
        bad[5].pop();
        assert!(!bad
            .iter()
            .all(|s| crate::chunking::spans_cover_exactly(s.clone(), bytes)));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut m = machine(OpMode::Smp);
            run_torus_bcast(&mut m, &spec(2 << 20), identity_stage()).completion
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn intra_stage_is_invoked_per_node_per_chunk() {
        use std::cell::Cell;
        let count = Rc::new(Cell::new(0u64));
        let c2 = count.clone();
        let stage: IntraStage = Rc::new(move |_m, now, _node, _b| {
            c2.set(c2.get() + 1);
            now
        });
        let mut m = machine(OpMode::Quad);
        let s = TorusBcastSpec {
            root: NodeId(0),
            bytes: 6 * 64 * 1024, // exactly one pwidth chunk per color
            pwidth: 64 * 1024,
            working_set: 4 * 6 * 64 * 1024,
        };
        run_torus_bcast(&mut m, &s, stage);
        // 63 non-root nodes x 6 colors x 1 chunk each, plus the root's own
        // intra chain (6 colors x 1 chunk).
        assert_eq!(count.get(), 63 * 6 + 6);
    }

    #[test]
    fn slow_intra_stage_reduces_bandwidth() {
        // An intra stage that costs core time must show up as lower
        // delivered bandwidth (back-pressure through completion).
        let bytes = 4 << 20;
        let fast = {
            let mut m = machine(OpMode::Quad);
            run_torus_bcast(&mut m, &spec(bytes), identity_stage()).completion
        };
        let slow_stage: IntraStage = Rc::new(move |m, now, node, b| {
            // Distribute to 3 peers through the DMA (the Direct Put
            // baseline's intra stage).
            ops::dma_local_distribute(m, now, node, b, 3, 16 << 20)
        });
        let slow = {
            let mut m = machine(OpMode::Quad);
            run_torus_bcast(&mut m, &spec(bytes), slow_stage).completion
        };
        assert!(
            slow.as_nanos() > fast.as_nanos() * 2,
            "DMA distribution should be >2x slower: fast={fast} slow={slow}"
        );
    }

    #[test]
    fn zero_byte_broadcast_completes() {
        let mut m = machine(OpMode::Smp);
        let out = run_torus_bcast(&mut m, &spec(0), identity_stage());
        assert_eq!(out.completion, m.cfg.sw.mpi_overhead());
    }
}
