//! The global-interrupt barrier.
//!
//! BG/P has a dedicated global interrupt network for barriers; MPI_Barrier
//! over it costs ~1.3 µs regardless of partition size. The microbenchmark
//! (paper Figure 5) issues one barrier before every timed collective, so
//! the harness charges this cost but excludes it from the collective's
//! elapsed time, exactly like the pseudo-code does.

use bgp_dcmf::Machine;
use bgp_sim::SimTime;

/// Time for a full-partition barrier starting at `now`.
pub fn barrier_done(m: &Machine, now: SimTime) -> SimTime {
    now + m.cfg.sw.barrier()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_machine::{MachineConfig, OpMode};

    #[test]
    fn barrier_is_fixed_cost() {
        let m = Machine::new(MachineConfig::test_small(OpMode::Quad));
        let t0 = SimTime::from_micros(5);
        assert_eq!(barrier_done(&m, t0) - t0, m.cfg.sw.barrier());
    }
}
