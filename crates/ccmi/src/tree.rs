//! The collective-network executor (broadcast as a hardware allreduce).
//!
//! BG/P implements tree broadcast with the ALU: the root injects the
//! payload, **every other node injects zeros**, the switches OR the streams
//! together on the way up, and the result flows back down to every node
//! (paper §V-B). Two consequences the model must capture:
//!
//! 1. every node runs an injection *and* a reception data path — which is
//!    why one core cannot saturate the tree and why the paper specializes
//!    two processes (local ranks 0 and 1) to the two directions;
//! 2. packet `k` emerges from the hardware root only after all nodes have
//!    injected their packet `k` — the combine gate.
//!
//! Because tree channels are per-node (replication happens in the
//! switches), nodes do not contend with each other; completion time is
//! decided by the root node and the deepest *witness* node. Simulating
//! those two with full per-chunk pipelines is therefore exact, and lets the
//! same executor run 2048-node machines in microseconds.
//!
//! The executor is event-driven: chunk `k+1`'s injection is scheduled at
//! chunk `k`'s injection completion, and reception events fire at delivery
//! times, so shared-server reservations are always made in causal time
//! order (the FIFO-server rule).

use std::cell::RefCell;
use std::rc::Rc;

use bgp_dcmf::{ops, Machine, Sim};
use bgp_machine::geometry::NodeId;
use bgp_sim::SimTime;

use crate::chunking::chunk_sizes;

/// Parameters of one tree collective.
#[derive(Debug, Clone)]
pub struct TreeSpec {
    /// The (software) root node.
    pub root: NodeId,
    /// Message size in bytes.
    pub bytes: u64,
    /// Pipeline width.
    pub pwidth: u64,
}

/// The per-algorithm stages.
pub struct TreeStages {
    /// Per-chunk injection at a node. `payload` is `true` at the root
    /// (inject real data, pays the memory read) and `false` elsewhere
    /// (inject generated zeros — core and tree time, no memory read).
    /// Returns injection completion.
    #[allow(clippy::type_complexity)]
    pub inject: Box<dyn Fn(&mut Machine, SimTime, NodeId, u64, bool) -> SimTime>,
    /// Per-chunk reception **and intra-node distribution** at a node.
    /// Returns when every rank of the node has the chunk.
    #[allow(clippy::type_complexity)]
    pub recv: Box<dyn Fn(&mut Machine, SimTime, NodeId, u64) -> SimTime>,
}

struct TreeState {
    spec: TreeSpec,
    stages: TreeStages,
    chunks: Vec<u64>,
    witness: NodeId,
    up_root: u32,
    up_wit: u32,
    inj_root: Vec<Option<SimTime>>,
    inj_wit: Vec<Option<SimTime>>,
    completion: SimTime,
}

/// Run a tree broadcast; returns the time the last rank of the last node
/// has the full message (including MPI dispatch overhead).
pub fn run_tree_collective(m: &mut Machine, spec: &TreeSpec, stages: TreeStages) -> SimTime {
    let n = m.tree.len();
    let t0 = m.cfg.sw.mpi_overhead();
    let mut chunks = chunk_sizes(spec.bytes, spec.pwidth);
    if chunks.is_empty() {
        // Zero-byte broadcast: a single header-only packet still flows.
        chunks.push(0);
    }

    if n == 1 {
        let mut done = t0;
        for &c in &chunks {
            done = (stages.recv)(m, done, spec.root, c);
        }
        return done;
    }

    // The witness: the deepest node that is not the root.
    let witness = if spec.root.0 == n - 1 {
        NodeId(n - 2)
    } else {
        NodeId(n - 1)
    };
    let n_chunks = chunks.len();
    let st = Rc::new(RefCell::new(TreeState {
        spec: spec.clone(),
        stages,
        chunks,
        witness,
        up_root: m.tree.hops_to_root(spec.root),
        up_wit: m.tree.hops_to_root(witness),
        inj_root: vec![None; n_chunks],
        inj_wit: vec![None; n_chunks],
        completion: t0,
    }));

    let mut eng: Sim = Sim::new();
    {
        let st_r = st.clone();
        eng.schedule_at(t0, move |m, eng| inject_step(m, eng, &st_r, 0, true));
        let st_w = st.clone();
        eng.schedule_at(t0, move |m, eng| inject_step(m, eng, &st_w, 0, false));
    }
    eng.run(m);

    let done = st.borrow().completion;
    done
}

/// Inject chunk `k` at the root (`at_root`) or the witness; chain the next
/// chunk at this one's completion, and fire the combine gate when both
/// sides of chunk `k` are in.
fn inject_step(
    m: &mut Machine,
    eng: &mut Sim,
    st: &Rc<RefCell<TreeState>>,
    k: usize,
    at_root: bool,
) {
    let now = eng.now();
    let (node, bytes, n_chunks) = {
        let s = st.borrow();
        let node = if at_root { s.spec.root } else { s.witness };
        (node, s.chunks[k], s.chunks.len())
    };
    let fin = {
        let s = st.borrow();
        (s.stages.inject)(m, now, node, bytes, at_root)
    };
    m.probe.count("tree_chunk_injections", 1);
    let gate_ready = {
        let mut s = st.borrow_mut();
        if at_root {
            s.inj_root[k] = Some(fin);
        } else {
            s.inj_wit[k] = Some(fin);
        }
        match (s.inj_root[k], s.inj_wit[k]) {
            (Some(r), Some(w)) => {
                let lat = |hops| m.cfg.tree.hop_latency(hops);
                Some((r + lat(s.up_root)).max(w + lat(s.up_wit)))
            }
            _ => None,
        }
    };
    if let Some(gate) = gate_ready {
        let st2 = st.clone();
        eng.schedule_at(gate, move |m, eng| deliver_step(m, eng, &st2, k));
    }
    if k + 1 < n_chunks {
        let st2 = st.clone();
        eng.schedule_at(fin, move |m, eng| inject_step(m, eng, &st2, k + 1, at_root));
    }
}

/// Chunk `k` has emerged from the hardware root: deliver it down to the
/// root node and the witness, then run their reception stages.
fn deliver_step(m: &mut Machine, eng: &mut Sim, st: &Rc<RefCell<TreeState>>, k: usize) {
    let now = eng.now();
    let (root, witness, up_root, up_wit, bytes) = {
        let s = st.borrow();
        (s.spec.root, s.witness, s.up_root, s.up_wit, s.chunks[k])
    };
    for (node, down) in [(root, up_root), (witness, up_wit)] {
        let wire = ops::tree_down_transfer(m, now, node, bytes);
        let arrival = wire + m.cfg.tree.hop_latency(down);
        let st2 = st.clone();
        eng.schedule_at(arrival, move |m, eng| {
            let now = eng.now();
            let done = {
                let s = st2.borrow();
                (s.stages.recv)(m, now, node, bytes)
            };
            m.probe.count("tree_chunk_deliveries", 1);
            m.probe.record("recv_stage", node.0, now, done);
            let mut s = st2.borrow_mut();
            s.completion = s.completion.max(done);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_machine::{MachineConfig, OpMode};
    use bgp_sim::Rate;

    /// SMP-mode stages: dedicated injection thread on core 0, reception on
    /// core 1, no intra-node distribution.
    fn smp_stages() -> TreeStages {
        TreeStages {
            inject: Box::new(|m, now, node, c, payload| {
                let ws = if payload { 1 << 20 } else { 0 };
                ops::tree_inject(m, now, node, 0, c, ws, payload)
            }),
            recv: Box::new(|m, now, node, c| ops::tree_recv(m, now, node, 1, c, 1 << 20)),
        }
    }

    fn machine(nodes: u32) -> Machine {
        let cfg = MachineConfig::with_nodes(nodes, OpMode::Smp);
        Machine::new(cfg)
    }

    fn spec(bytes: u64) -> TreeSpec {
        TreeSpec {
            root: NodeId(0),
            bytes,
            pwidth: 16 * 1024,
        }
    }

    #[test]
    fn smp_bandwidth_approaches_tree_rate() {
        let mut m = machine(2048);
        let bytes = 4 << 20;
        let done = run_tree_collective(&mut m, &spec(bytes), smp_stages());
        let bw = Rate::observed(bytes, done).unwrap().as_mb_per_sec();
        assert!(bw > 750.0, "tree bandwidth too low: {bw}");
        assert!(bw <= 850.0, "tree bandwidth above raw rate: {bw}");
    }

    #[test]
    fn one_core_for_both_directions_halves_bandwidth() {
        let both_on_core0 = || TreeStages {
            inject: Box::new(|m, now, node, c, payload| {
                ops::tree_inject(m, now, node, 0, c, 1 << 20, payload)
            }),
            recv: Box::new(|m, now, node, c| ops::tree_recv(m, now, node, 0, c, 1 << 20)),
        };
        let bytes = 4 << 20;
        let mut m1 = machine(512);
        let two = run_tree_collective(&mut m1, &spec(bytes), smp_stages());
        let mut m2 = machine(512);
        let one = run_tree_collective(&mut m2, &spec(bytes), both_on_core0());
        let ratio = one.as_secs_f64() / two.as_secs_f64();
        assert!(
            ratio > 1.5 && ratio < 2.4,
            "single-core penalty should be ~2x, got {ratio}"
        );
    }

    #[test]
    fn latency_grows_with_machine_depth() {
        // Figure 6/9: small-message latency rises with process count
        // (deeper tree), bandwidth does not.
        let mut small = machine(256);
        let mut large = machine(2048);
        let lat_small = run_tree_collective(&mut small, &spec(1), smp_stages());
        let lat_large = run_tree_collective(&mut large, &spec(1), smp_stages());
        assert!(lat_large > lat_small);
        // Depth difference: 2048 nodes (depth 11) vs 256 (depth 8) = 3 hops
        // each way = 6 hop latencies.
        let d = (lat_large - lat_small).as_nanos();
        assert_eq!(d, 6 * large.cfg.tree.hop_latency_ns);
    }

    #[test]
    fn bandwidth_is_scale_independent() {
        // Figure 9: the tree's throughput does not degrade with scale.
        let bytes = 2 << 20;
        let mut small = machine(256);
        let mut large = machine(2048);
        let t_small = run_tree_collective(&mut small, &spec(bytes), smp_stages());
        let t_large = run_tree_collective(&mut large, &spec(bytes), smp_stages());
        let ratio = t_large.as_secs_f64() / t_small.as_secs_f64();
        assert!(ratio < 1.02, "tree bandwidth should not degrade: {ratio}");
    }

    #[test]
    fn zero_bytes_is_header_latency() {
        let mut m = machine(2048);
        let done = run_tree_collective(&mut m, &spec(0), smp_stages());
        assert!(done > m.cfg.sw.mpi_overhead());
        assert!(done < SimTime::from_micros(20));
    }

    #[test]
    fn latency_is_root_position_independent() {
        // With the OR-allreduce implementation every node injects, so the
        // combine gate waits for the *deepest injector* regardless of which
        // node holds the payload: moving the root deeper must not change
        // the small-message latency (as long as the deepest node is
        // unchanged).
        let mut a = machine(512);
        let lat_root0 = run_tree_collective(&mut a, &spec(1), smp_stages());
        let mut b = machine(512);
        let mut s = spec(1);
        s.root = NodeId(300);
        let lat_deep = run_tree_collective(&mut b, &s, smp_stages());
        assert_eq!(lat_deep, lat_root0);
    }

    #[test]
    fn single_node_machine_runs_recv_only() {
        let mut m = machine(1);
        let done = run_tree_collective(&mut m, &spec(4096), smp_stages());
        assert!(done > m.cfg.sw.mpi_overhead());
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut m = machine(512);
            run_tree_collective(&mut m, &spec(1 << 20), smp_stages())
        };
        assert_eq!(run(), run());
    }
}
