//! Message splitting: colors and pipeline chunks.

/// Split `total` bytes across `n_colors` streams as evenly as possible
/// (first streams take the remainder). Every byte lands in exactly one
/// color; empty colors are allowed for tiny messages.
pub fn color_shares(total: u64, n_colors: usize) -> Vec<u64> {
    assert!(n_colors >= 1, "need at least one color");
    let base = total / n_colors as u64;
    let rem = (total % n_colors as u64) as usize;
    (0..n_colors).map(|i| base + u64::from(i < rem)).collect()
}

/// Split `bytes` into pipeline chunks of `pwidth` (the last chunk may be
/// short). Zero bytes yields no chunks.
pub fn chunk_sizes(bytes: u64, pwidth: u64) -> Vec<u64> {
    assert!(pwidth >= 1, "pipeline width must be positive");
    let mut out = Vec::with_capacity((bytes / pwidth + 1) as usize);
    let mut left = bytes;
    while left > 0 {
        let c = left.min(pwidth);
        out.push(c);
        left -= c;
    }
    out
}

/// A contiguous byte range of the message: `(offset, len)`.
pub type Span = (u64, u64);

/// Split `bytes` starting at `base` into pipeline-chunk spans.
pub fn chunk_spans(base: u64, bytes: u64, pwidth: u64) -> Vec<Span> {
    chunk_sizes(bytes, pwidth)
        .into_iter()
        .scan(base, |off, len| {
            let s = (*off, len);
            *off += len;
            Some(s)
        })
        .collect()
}

/// Per-color spans of the whole message: color `c` owns the contiguous
/// range `[start_c, start_c + share_c)`.
pub fn color_spans(total: u64, n_colors: usize) -> Vec<Span> {
    color_shares(total, n_colors)
        .into_iter()
        .scan(0u64, |off, len| {
            let s = (*off, len);
            *off += len;
            Some(s)
        })
        .collect()
}

/// Check that `spans` form a disjoint, exact cover of `[0, total)`.
/// Consumes and sorts the spans.
pub fn spans_cover_exactly(mut spans: Vec<Span>, total: u64) -> bool {
    spans.sort_unstable();
    let mut next = 0u64;
    for (off, len) in spans {
        if off != next {
            return false; // gap or overlap
        }
        next = off + len;
    }
    next == total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_total() {
        for total in [0u64, 1, 5, 6, 7, 1 << 20, (1 << 20) + 3] {
            let s = color_shares(total, 6);
            assert_eq!(s.len(), 6);
            assert_eq!(s.iter().sum::<u64>(), total);
            // Shares differ by at most one byte.
            let mx = *s.iter().max().unwrap();
            let mn = *s.iter().min().unwrap();
            assert!(mx - mn <= 1);
        }
    }

    #[test]
    fn shares_single_color() {
        assert_eq!(color_shares(100, 1), vec![100]);
    }

    #[test]
    fn chunks_cover_exactly() {
        for bytes in [0u64, 1, 1023, 1024, 1025, 100_000] {
            let c = chunk_sizes(bytes, 1024);
            assert_eq!(c.iter().sum::<u64>(), bytes);
            assert!(c.iter().all(|&x| (1..=1024).contains(&x)));
            // Only the final chunk may be short.
            for &x in c.iter().rev().skip(1) {
                assert_eq!(x, 1024);
            }
        }
    }

    #[test]
    fn zero_message_has_no_chunks() {
        assert!(chunk_sizes(0, 4096).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_pwidth_rejected() {
        let _ = chunk_sizes(10, 0);
    }

    #[test]
    fn chunk_spans_are_contiguous_from_base() {
        let spans = chunk_spans(100, 2500, 1000);
        assert_eq!(spans, vec![(100, 1000), (1100, 1000), (2100, 500)]);
        assert!(chunk_spans(0, 0, 16).is_empty());
    }

    #[test]
    fn color_spans_partition_the_message() {
        let spans = color_spans(100, 6);
        assert!(spans_cover_exactly(spans, 100));
        let spans = color_spans(0, 3);
        assert!(spans_cover_exactly(spans, 0));
    }

    #[test]
    fn cover_checker_rejects_gaps_overlaps_and_shortfalls() {
        assert!(spans_cover_exactly(vec![(0, 5), (5, 5)], 10));
        assert!(spans_cover_exactly(vec![(5, 5), (0, 5)], 10)); // order-free
        assert!(!spans_cover_exactly(vec![(0, 5), (6, 4)], 10)); // gap
        assert!(!spans_cover_exactly(vec![(0, 6), (5, 5)], 10)); // overlap
        assert!(!spans_cover_exactly(vec![(0, 5)], 10)); // short
        assert!(!spans_cover_exactly(vec![(0, 5), (5, 6)], 10)); // long
        assert!(spans_cover_exactly(vec![], 0));
    }
}
