//! The Point-to-Point FIFO (paper §IV-A).
//!
//! A bounded multi-producer multi-consumer queue built on the single atomic
//! primitive the paper assumes: **fetch-and-increment**. A producer reserves
//! a unique slot by atomically incrementing the tail; the slot index is
//! `ticket % capacity`; messages drain in reservation order.
//!
//! The paper's two required attributes hold by construction:
//!
//! 1. *each process enqueues into a unique slot* — tickets are unique because
//!    fetch-and-increment is atomic;
//! 2. *messages are drained in the order they were enqueued* — consumers also
//!    take tickets from an atomic head, and each slot carries a sequence word
//!    that matches consumers to exactly the ticket that filled it.
//!
//! The sequence word doubles as the "write completion step" of the paper: a
//! consumer never observes a reserved-but-unwritten slot, and a producer
//! never overwrites a slot a consumer is still reading (the paper's
//! `(myslot - head) < fifoSize` space check alone would allow that; the
//! per-slot sequence closes the hole while keeping the same FIFO discipline).

use std::mem::MaybeUninit;

use crate::pad::CachePadded;
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::cell::UnsafeCell;

use crate::model_support;
use crate::spin;

struct Slot<T> {
    /// Cycle tag: `ticket` when free for the producer holding `ticket`,
    /// `ticket + 1` when filled, `ticket + capacity` after being drained
    /// (i.e. free for the producer of the next cycle).
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded MPMC FIFO on fetch-and-increment tickets.
///
/// `enqueue`/`dequeue` block (spin) when full/empty, which matches the
/// paper's usage: collective participants never abandon an operation
/// half-way. `try_dequeue` is provided for progress-loop integration.
pub struct PtpFifo<T> {
    slots: Box<[Slot<T>]>,
    cap: usize,
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: slots are handed between threads with release/acquire on `seq`;
// a `T` is only ever accessed by the unique ticket holder.
unsafe impl<T: Send> Send for PtpFifo<T> {}
unsafe impl<T: Send> Sync for PtpFifo<T> {}

impl<T> PtpFifo<T> {
    /// Create a FIFO with `capacity` slots.
    ///
    /// `capacity` must be at least 2: with a single slot, the "published
    /// ticket t" tag (`t + 1`) and the "free for ticket t+1" tag
    /// (`t + capacity`) coincide, so a producer could overwrite a published,
    /// unread message — the same reason Vyukov's bounded MPMC queue requires
    /// a buffer of at least two cells.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "FIFO capacity must be at least 2");
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        PtpFifo {
            slots,
            cap: capacity,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Slot count.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Messages currently enqueued.
    ///
    /// Diagnostic only: `head` and `tail` are read as two independent
    /// relaxed loads. Producers reserve tickets *before* waiting for space
    /// and blocking consumers reserve tickets *before* a message exists, so
    /// the raw difference can transiently exceed `capacity()` (extra
    /// waiting producers) or underflow (waiting consumers). The value is
    /// clamped to `[0, capacity()]`; it is exact whenever the FIFO is
    /// externally quiesced.
    pub fn len(&self) -> usize {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        t.saturating_sub(h).min(self.cap)
    }

    /// Emptiness snapshot, with the same racy-diagnostic contract as
    /// [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue, spinning while the FIFO is full.
    pub fn enqueue(&self, value: T) {
        // Paper: "a given process increments the Tail atomically reserving a
        // unique slot" — reservation is unconditional; space is awaited.
        let ticket = self.tail.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[ticket % self.cap];
        // Wait until the slot's previous occupant (ticket - cap) is drained.
        while slot.seq.load(Ordering::Acquire) != ticket {
            spin();
        }
        // SAFETY: we hold the unique ticket for this slot cycle.
        unsafe { slot.val.with_mut(|p| (*p).write(value)) };
        // "Write completion step": publish. (The seeded `ptp_publish_relaxed`
        // bug weakens this so the payload write is no longer ordered before
        // the consumer's acquire of `seq`.)
        slot.seq.store(
            ticket + 1,
            model_support::relaxed_if("ptp_publish_relaxed", Ordering::Release),
        );
    }

    /// Dequeue, spinning while the FIFO is empty.
    pub fn dequeue(&self) -> T {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[ticket % self.cap];
        while slot.seq.load(Ordering::Acquire) != ticket + 1 {
            spin();
        }
        // SAFETY: publication observed; we are the unique consumer ticket.
        let value = unsafe { slot.val.with(|p| (*p).assume_init_read()) };
        // Free the slot for the producer `cap` tickets later. (The seeded
        // `ptp_free_relaxed` bug weakens this so the next-cycle producer's
        // payload write is no longer ordered after our read.)
        slot.seq.store(
            ticket + self.cap,
            model_support::relaxed_if("ptp_free_relaxed", Ordering::Release),
        );
        value
    }

    /// Non-blocking dequeue: `None` if no message is ready.
    ///
    /// Uses a CAS on the head so an empty poll does not consume a ticket.
    pub fn try_dequeue(&self) -> Option<T> {
        loop {
            let ticket = self.head.load(Ordering::Relaxed);
            let slot = &self.slots[ticket % self.cap];
            if slot.seq.load(Ordering::Acquire) != ticket + 1 {
                return None; // nothing published at the head
            }
            if self
                .head
                .compare_exchange_weak(ticket, ticket + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                let value = unsafe { slot.val.with(|p| (*p).assume_init_read()) };
                slot.seq.store(
                    ticket + self.cap,
                    model_support::relaxed_if("ptp_free_relaxed", Ordering::Release),
                );
                return Some(value);
            }
        }
    }
}

impl<T> Drop for PtpFifo<T> {
    fn drop(&mut self) {
        // Drain undelivered messages so their destructors run.
        while self.try_dequeue().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn single_thread_fifo_order() {
        let q = PtpFifo::new(4);
        for i in 0..4 {
            q.enqueue(i);
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.dequeue(), i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn wraparound_reuses_slots() {
        let q = PtpFifo::new(2);
        for round in 0..100 {
            q.enqueue(round * 2);
            q.enqueue(round * 2 + 1);
            assert_eq!(q.dequeue(), round * 2);
            assert_eq!(q.dequeue(), round * 2 + 1);
        }
    }

    #[test]
    fn try_dequeue_empty_is_none_and_consumes_nothing() {
        let q: PtpFifo<u32> = PtpFifo::new(4);
        assert_eq!(q.try_dequeue(), None);
        q.enqueue(9);
        assert_eq!(q.try_dequeue(), Some(9));
        assert_eq!(q.try_dequeue(), None);
    }

    #[test]
    fn capacity_two_works() {
        let q = PtpFifo::new(2);
        for i in 0..10 {
            q.enqueue(i);
            assert_eq!(q.dequeue(), i);
        }
    }

    #[test]
    #[should_panic]
    fn capacity_one_rejected() {
        // A single slot cannot distinguish "published" from "free for the
        // next cycle" (tag collision) — constructor must refuse.
        let _: PtpFifo<u8> = PtpFifo::new(1);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _: PtpFifo<u8> = PtpFifo::new(0);
    }

    #[test]
    fn spsc_blocking_backpressure() {
        // Producer is far ahead of consumer; capacity 4 forces it to wait.
        let q = Arc::new(PtpFifo::new(4));
        let n = crate::testing::stress_iters(10_000) as u64;
        let p = {
            let q = q.clone();
            thread::spawn(move || {
                for i in 0..n {
                    q.enqueue(i);
                }
            })
        };
        let c = {
            let q = q.clone();
            thread::spawn(move || {
                for i in 0..n {
                    assert_eq!(q.dequeue(), i);
                }
            })
        };
        p.join().unwrap();
        c.join().unwrap();
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        const PRODUCERS: u64 = 4;
        const CONSUMERS: usize = 3;
        let per = crate::testing::stress_iters(2_000) as u64;
        let q = Arc::new(PtpFifo::new(8));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    q.enqueue(p * per + i);
                }
            }));
        }
        let total = PRODUCERS * per;
        let per_consumer = total / CONSUMERS as u64;
        let remainder = total % CONSUMERS as u64;
        let mut consumers = Vec::new();
        for c in 0..CONSUMERS {
            let q = q.clone();
            let take = per_consumer + if (c as u64) < remainder { 1 } else { 0 };
            consumers.push(thread::spawn(move || {
                let mut got = Vec::with_capacity(take as usize);
                for _ in 0..take {
                    got.push(q.dequeue());
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut all = HashSet::new();
        for c in consumers {
            for v in c.join().unwrap() {
                assert!(all.insert(v), "duplicate message {v}");
            }
        }
        assert_eq!(all.len() as u64, total, "lost messages");
    }

    #[test]
    fn per_producer_order_is_preserved_spsc_per_stream() {
        // With a single consumer, each producer's messages arrive in its
        // own program order (FIFO per reservation order).
        let q = Arc::new(PtpFifo::new(16));
        let n = crate::testing::stress_iters(5_000) as u64;
        let p1 = {
            let q = q.clone();
            thread::spawn(move || {
                for i in 0..n {
                    q.enqueue(("a", i));
                }
            })
        };
        let p2 = {
            let q = q.clone();
            thread::spawn(move || {
                for i in 0..n {
                    q.enqueue(("b", i));
                }
            })
        };
        let mut last_a = None;
        let mut last_b = None;
        for _ in 0..(2 * n) {
            let (tag, v) = q.dequeue();
            let last = if tag == "a" { &mut last_a } else { &mut last_b };
            if let Some(prev) = *last {
                assert!(v > prev, "stream {tag} reordered: {v} after {prev}");
            }
            *last = Some(v);
        }
        p1.join().unwrap();
        p2.join().unwrap();
    }

    #[test]
    fn drop_releases_undelivered_values() {
        // Miri-friendly leak check: enqueue Arcs, drop the FIFO, refcounts
        // must return to 1.
        let probe = Arc::new(());
        {
            let q = PtpFifo::new(8);
            for _ in 0..5 {
                q.enqueue(probe.clone());
            }
            let _ = q.dequeue();
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }
}
