//! A single-writer seqlock over a small fixed set of 64-bit words.
//!
//! The cross-process segment (see `bgp-smp`'s process backend) needs a way
//! to publish *multi-word* records — job descriptors, status reports —
//! through plain shared memory, where a mutex is off the table (a crashed
//! holder would wedge every peer) and a single atomic word is too narrow.
//! The classic answer is a seqlock: a version word that is **odd while a
//! write is in progress** and even otherwise. The writer bumps it to odd,
//! writes the data words, then bumps it to even; a reader snapshots the
//! version, copies the words, and accepts the copy only if the version was
//! even and unchanged when it finished.
//!
//! ## Memory-ordering discipline
//!
//! The data words here are themselves atomics (`AtomicU64`), so a "torn"
//! read is never UB — it is a *stale mix* of old and new words, and the
//! version check is what rejects it:
//!
//! * Writer: `seq ← odd` (`Relaxed`), data stores `Release`, `seq ← even`
//!   (`Release`). Each `Release` data store orders the odd mark before it,
//!   so a reader that `Acquire`-loads any new word then sees `seq` odd (or
//!   later) and rejects; the final `Release` orders every data store
//!   before the even mark, so a reader whose first `Acquire` load sees the
//!   new even version sees every new word.
//! * Reader: `s1 ← seq` (`Acquire`, reject odd), data loads `Acquire`,
//!   `s2 ← seq` (`Acquire`, reject `s2 != s1`). The `Acquire` loads keep
//!   the sequence from being hoisted across each other.
//!
//! No fences and no `SeqCst` — each edge is a pairwise release/acquire,
//! which is exactly the discipline the `bgp-check` vector-clock verifier
//! models (see `tests/model.rs`: the protocol oracle asserts snapshot
//! consistency, and the seeded `seqlock_enter_skipped` /
//! `seqlock_validate_skipped` bugs must be caught and replayed).
//!
//! ## Storage genericity
//!
//! [`SeqLock`] is generic over [`SeqWords`] — anything that can hand out
//! the version word and the data words as `&AtomicU64`. [`HeapSeqWords`]
//! is the in-process (and model-checked) backing; the process backend
//! implements `SeqWords` over words of an mmap'd segment, so the protocol
//! verified on the heap twin is byte-for-byte the one that runs cross
//! process.

use crate::model_support;
use crate::pad::CachePadded;
use crate::sync::atomic::{AtomicU64, Ordering};

/// Storage for one seqlock: a version word plus `n_words` data words, all
/// `AtomicU64`.
///
/// Implementations must return the *same* word for the same index every
/// call (the words are identity, not values) — both backings here do so
/// trivially.
pub trait SeqWords {
    /// The version word.
    fn seq(&self) -> &AtomicU64;
    /// Number of data words.
    fn n_words(&self) -> usize;
    /// The `i`-th data word (`i < n_words`).
    fn word(&self, i: usize) -> &AtomicU64;
}

/// Heap backing for [`SeqLock`]: the version word on its own cache line,
/// data words contiguous. This is the model-checked twin of the segment
/// backing.
pub struct HeapSeqWords {
    seq: CachePadded<AtomicU64>,
    words: Vec<AtomicU64>,
}

impl HeapSeqWords {
    /// Fresh storage for `n_words` data words, version 0, all words 0.
    pub fn new(n_words: usize) -> Self {
        HeapSeqWords {
            seq: CachePadded::new(AtomicU64::new(0)),
            words: (0..n_words).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

impl SeqWords for HeapSeqWords {
    fn seq(&self) -> &AtomicU64 {
        &self.seq
    }

    fn n_words(&self) -> usize {
        self.words.len()
    }

    fn word(&self, i: usize) -> &AtomicU64 {
        &self.words[i]
    }
}

/// A single-writer, any-reader seqlock over [`SeqWords`] storage.
///
/// **Single writer**: concurrent `publish` calls are a protocol violation
/// (debug-asserted, and caught as an inconsistent snapshot by the model
/// oracle). Readers are unrestricted and never block the writer.
pub struct SeqLock<S: SeqWords> {
    words: S,
}

impl SeqLock<HeapSeqWords> {
    /// A heap-backed seqlock with `n_words` data words.
    pub fn heap(n_words: usize) -> Self {
        SeqLock::over(HeapSeqWords::new(n_words))
    }
}

impl<S: SeqWords> SeqLock<S> {
    /// Wrap existing storage. The storage's current version must be even
    /// (no write in progress) — true of zeroed memory.
    pub fn over(words: S) -> Self {
        SeqLock { words }
    }

    /// The underlying storage.
    pub fn storage(&self) -> &S {
        &self.words
    }

    /// Publish `vals` (one per data word; `vals.len()` may be shorter than
    /// the storage, never longer). Single writer only.
    pub fn publish(&self, vals: &[u64]) {
        assert!(
            vals.len() <= self.words.n_words(),
            "seqlock record too wide"
        );
        let s = self.words.seq().load(Ordering::Relaxed);
        debug_assert!(
            s.is_multiple_of(2),
            "concurrent or re-entrant seqlock writer"
        );
        // Seeded bug: skip the odd "write in progress" mark — readers can
        // no longer tell a mid-write snapshot from a stable one.
        if !model_support::seeded("seqlock_enter_skipped") {
            self.words.seq().store(s + 1, Ordering::Relaxed);
        }
        for (i, v) in vals.iter().enumerate() {
            self.words.word(i).store(*v, Ordering::Release);
        }
        self.words.seq().store(s + 2, Ordering::Release);
    }

    /// Snapshot the first `out.len()` data words if no write intervenes;
    /// returns the (even) version of the snapshot, or `None` if a write
    /// was in progress or raced the copy.
    pub fn try_read_into(&self, out: &mut [u64]) -> Option<u64> {
        assert!(out.len() <= self.words.n_words(), "seqlock read too wide");
        let s1 = self.words.seq().load(Ordering::Acquire);
        if !s1.is_multiple_of(2) {
            return None;
        }
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.words.word(i).load(Ordering::Acquire);
        }
        // Seeded bug: trust the first pass unconditionally — a concurrent
        // writer's half-applied record is returned as if stable.
        if model_support::seeded("seqlock_validate_skipped") {
            return Some(s1);
        }
        let s2 = self.words.seq().load(Ordering::Acquire);
        if s2 == s1 {
            Some(s1)
        } else {
            None
        }
    }

    /// Snapshot the first `out.len()` data words, retrying until a stable
    /// snapshot lands; returns its (even) version.
    pub fn read_into(&self, out: &mut [u64]) -> u64 {
        loop {
            if let Some(v) = self.try_read_into(out) {
                return v;
            }
            crate::spin();
        }
    }

    /// The current version word (even = stable; each publish adds 2).
    pub fn version(&self) -> u64 {
        self.words.seq().load(Ordering::Acquire)
    }
}

#[cfg(all(test, not(feature = "model")))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn publish_then_read_round_trips() {
        let l = SeqLock::heap(3);
        assert_eq!(l.version(), 0);
        let mut out = [0u64; 3];
        assert_eq!(l.try_read_into(&mut out), Some(0));
        assert_eq!(out, [0, 0, 0]);
        l.publish(&[7, 8, 9]);
        assert_eq!(l.read_into(&mut out), 2);
        assert_eq!(out, [7, 8, 9]);
        // Narrow reads and writes are allowed.
        l.publish(&[1]);
        let mut one = [0u64; 1];
        assert_eq!(l.read_into(&mut one), 4);
        assert_eq!(one, [1]);
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn oversized_publish_is_rejected() {
        SeqLock::heap(2).publish(&[1, 2, 3]);
    }

    /// Concurrent readers under a fast writer never observe a mixed
    /// record: the writer always publishes `[k, 2k]`, so any accepted
    /// snapshot must satisfy `w1 == 2 * w0`.
    #[test]
    fn readers_never_observe_torn_records() {
        let l = Arc::new(SeqLock::heap(2));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let (l, stop) = (l.clone(), stop.clone());
                std::thread::spawn(move || {
                    let mut out = [0u64; 2];
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if l.try_read_into(&mut out).is_some() {
                            assert_eq!(out[1], 2 * out[0], "torn seqlock read");
                            seen += 1;
                        }
                    }
                    // One guaranteed post-writer snapshot, so the test is
                    // meaningful even if this thread was starved until now.
                    l.read_into(&mut out);
                    assert_eq!(out[1], 2 * out[0], "torn seqlock read");
                    seen + 1
                })
            })
            .collect();
        for k in 1..=crate::testing::stress_iters(20_000) as u64 {
            l.publish(&[k, 2 * k]);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader never got a snapshot");
        }
    }
}
