//! The lock-based broadcast FIFO the paper argues *against*.
//!
//! §IV-A: "One of the ways would be to use a mutex for the FIFO and obtain
//! a unique slot … However, one would incur the overhead of lock/unlock for
//! every enqueue operation." This module implements exactly that strawman —
//! a mutex-protected broadcast queue with the same delivery semantics as
//! [`crate::BcastFifo`] — so the claim is testable on real hardware: the
//! `intranode_real` criterion bench compares the two under the quad-mode
//! 1-producer/3-consumer pattern.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::sync::Mutex;

use crate::spin;

struct Inner<T> {
    /// Messages still needed by at least one consumer, with the count of
    /// consumers that have already read each.
    queue: VecDeque<(T, usize)>,
    /// Ticket of the oldest message still in `queue`.
    head_ticket: usize,
    /// Next ticket to assign.
    tail_ticket: usize,
    capacity: usize,
    n_consumers: usize,
}

/// A mutex-protected broadcast FIFO (the §IV-A baseline).
pub struct MutexBcastFifo<T> {
    inner: Mutex<Inner<T>>,
}

/// Consumer handle with a private cursor (same shape as
/// [`crate::BcastConsumer`]).
pub struct MutexBcastConsumer<T> {
    fifo: Arc<MutexBcastFifo<T>>,
    cursor: usize,
}

impl<T: Clone> MutexBcastFifo<T> {
    /// Create with `capacity` slots for `n_consumers` consumers.
    pub fn with_consumers(
        capacity: usize,
        n_consumers: usize,
    ) -> (Arc<Self>, Vec<MutexBcastConsumer<T>>) {
        assert!(capacity >= 1, "capacity must be at least 1");
        assert!(n_consumers >= 1, "need at least one consumer");
        let fifo = Arc::new(MutexBcastFifo {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(capacity),
                head_ticket: 0,
                tail_ticket: 0,
                capacity,
                n_consumers,
            }),
        });
        let consumers = (0..n_consumers)
            .map(|_| MutexBcastConsumer {
                fifo: fifo.clone(),
                cursor: 0,
            })
            .collect();
        (fifo, consumers)
    }

    /// Broadcast `value`, blocking (spinning) while the FIFO is full.
    pub fn enqueue(&self, value: T) {
        loop {
            {
                let mut g = self.inner.lock();
                if g.queue.len() < g.capacity {
                    g.queue.push_back((value, 0));
                    g.tail_ticket += 1;
                    return;
                }
            }
            spin();
        }
    }

    /// Messages currently resident (diagnostic).
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True when no message is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn try_read(&self, cursor: usize) -> Option<T> {
        let mut g = self.inner.lock();
        if cursor < g.head_ticket || cursor >= g.tail_ticket {
            return None; // already retired (impossible per-consumer) or not yet produced
        }
        let idx = cursor - g.head_ticket;
        let value = g.queue[idx].0.clone();
        g.queue[idx].1 += 1;
        // Retire any fully-read prefix.
        while g
            .queue
            .front()
            .is_some_and(|(_, reads)| *reads == g.n_consumers)
        {
            g.queue.pop_front();
            g.head_ticket += 1;
        }
        Some(value)
    }
}

impl<T: Clone> MutexBcastConsumer<T> {
    /// Receive the next message, spinning until available.
    pub fn recv(&mut self) -> T {
        loop {
            if let Some(v) = self.fifo.try_read(self.cursor) {
                self.cursor += 1;
                return v;
            }
            spin();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        let v = self.fifo.try_read(self.cursor)?;
        self.cursor += 1;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn delivers_to_every_consumer_in_order() {
        let (fifo, mut consumers) = MutexBcastFifo::with_consumers(4, 3);
        let producer = thread::spawn(move || {
            for i in 0..500u64 {
                fifo.enqueue(i);
            }
        });
        let handles: Vec<_> = consumers
            .drain(..)
            .map(|mut c| {
                thread::spawn(move || {
                    for i in 0..500u64 {
                        assert_eq!(c.recv(), i);
                    }
                })
            })
            .collect();
        producer.join().unwrap();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn retires_only_after_all_read() {
        let (fifo, mut consumers) = MutexBcastFifo::with_consumers(2, 2);
        fifo.enqueue(1u8);
        assert_eq!(fifo.len(), 1);
        assert_eq!(consumers[0].recv(), 1);
        assert_eq!(fifo.len(), 1, "one reader outstanding");
        assert_eq!(consumers[1].recv(), 1);
        assert!(fifo.is_empty());
    }

    #[test]
    fn try_recv_when_empty() {
        let (_fifo, mut consumers) = MutexBcastFifo::<u8>::with_consumers(2, 1);
        assert_eq!(consumers[0].try_recv(), None);
    }

    #[test]
    fn backpressure_with_tiny_capacity() {
        let (fifo, mut consumers) = MutexBcastFifo::with_consumers(1, 2);
        let producer = thread::spawn(move || {
            for i in 0..200u64 {
                fifo.enqueue(i);
            }
        });
        let handles: Vec<_> = consumers
            .drain(..)
            .map(|mut c| thread::spawn(move || (0..200u64).map(|_| c.recv()).sum::<u64>()))
            .collect();
        producer.join().unwrap();
        let expect: u64 = (0..200).sum();
        for h in handles {
            assert_eq!(h.join().unwrap(), expect);
        }
    }
}
