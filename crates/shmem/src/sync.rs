//! Synchronization facade: locks, atomics, and the unsafe cell the
//! lock-free primitives are written against.
//!
//! The [`atomic`] and [`cell`] modules (and [`crate::spin`]) exist so the
//! primitives can be compiled in two ways from one source:
//!
//! * **Default:** zero-cost re-exports of `std::sync::atomic` and a
//!   `#[repr(transparent)]` wrapper over `std::cell::UnsafeCell` — the
//!   production build, identical codegen to using `std` directly.
//! * **`model` feature:** the same names resolve to `bgp-check`'s model
//!   types, which turn every access into a deterministic-scheduler choice
//!   point and check the release/acquire protocol with vector clocks. See
//!   `tests/model.rs`.
//!
//! The lock wrappers are thin `parking_lot`-style types over `std::sync`,
//! with two differences from std, both load-bearing for this crate:
//!
//! * `lock()` / `read()` / `write()` return the guard directly instead of a
//!   `Result` — lock poisoning is deliberately ignored. A rank thread that
//!   panicked already fails the whole node operation (the runtime re-panics
//!   on join); making every other rank *also* panic on a poisoned registry
//!   lock only obscures the original failure.
//! * No poison flag means the mutex-strawman FIFO measures pure lock
//!   hand-off cost, which is the comparison §IV-A actually makes.
//!
//! (The locks are *not* modeled: the mutex-strawman FIFO is a baseline, not
//! a protocol under verification, and a `std` mutex is invisible to the
//! model scheduler. Model tests only exercise the lock-free primitives.)

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Atomic types the primitives use, switched by the `model` feature.
/// `Ordering` is always `std`'s.
pub mod atomic {
    #[cfg(feature = "model")]
    pub use bgp_check::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
    #[cfg(not(feature = "model"))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};

    pub use std::sync::atomic::Ordering;
}

/// The `UnsafeCell` the primitives keep payloads in, switched by the
/// `model` feature. Accesses go through `with`/`with_mut` closures (the
/// `loom` API shape) so the model build can interpose its race checker.
pub mod cell {
    #[cfg(feature = "model")]
    pub use bgp_check::cell::UnsafeCell;

    /// Transparent wrapper over [`std::cell::UnsafeCell`] exposing the
    /// model cell's API at zero cost.
    #[cfg(not(feature = "model"))]
    #[repr(transparent)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    #[cfg(not(feature = "model"))]
    impl<T> UnsafeCell<T> {
        pub const fn new(value: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(value))
        }

        /// Immutable access to the contents.
        ///
        /// # Safety
        ///
        /// As for dereferencing [`std::cell::UnsafeCell::get`]: the caller's
        /// protocol must order this read after the write that produced the
        /// value (and the model build verifies exactly that).
        #[inline(always)]
        pub unsafe fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Mutable access to the contents.
        ///
        /// # Safety
        ///
        /// As for [`Self::with`], plus exclusivity: the protocol must order
        /// this write after every earlier access.
        #[inline(always)]
        pub unsafe fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }

        /// Access through an exclusive borrow — always race-free.
        #[inline(always)]
        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut()
        }

        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }

    // SAFETY: sharing is sound only under the external synchronization the
    // containing primitive provides — the same contract as the std cell (and
    // what the model build actually checks).
    #[cfg(not(feature = "model"))]
    unsafe impl<T: Send> Send for UnsafeCell<T> {}
    #[cfg(not(feature = "model"))]
    unsafe impl<T: Send + Sync> Sync for UnsafeCell<T> {}
}

/// Mutual exclusion lock; `lock()` returns the guard directly and ignores
/// poisoning (see module docs).
#[derive(Default, Debug)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create the lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock, blocking; a poisoned lock is recovered, not
    /// propagated.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly and ignore
/// poisoning (see module docs).
#[derive(Default, Debug)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create the lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_try() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.try_lock().map(|g| *g), Some(2));
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A poisoned std mutex would error here; ours hands back the guard.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
