//! Thin lock wrappers with a `parking_lot`-style API over `std::sync`.
//!
//! Two differences from the std types, both load-bearing for this crate:
//!
//! * `lock()` / `read()` / `write()` return the guard directly instead of a
//!   `Result` — lock poisoning is deliberately ignored. A rank thread that
//!   panicked already fails the whole node operation (the runtime re-panics
//!   on join); making every other rank *also* panic on a poisoned registry
//!   lock only obscures the original failure.
//! * No poison flag means the mutex-strawman FIFO measures pure lock
//!   hand-off cost, which is the comparison §IV-A actually makes.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutual exclusion lock; `lock()` returns the guard directly and ignores
/// poisoning (see module docs).
#[derive(Default, Debug)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create the lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock, blocking; a poisoned lock is recovered, not
    /// propagated.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly and ignore
/// poisoning (see module docs).
#[derive(Default, Debug)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create the lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_try() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.try_lock().map(|g| *g), Some(2));
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A poisoned std mutex would error here; ours hands back the guard.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
