//! A bank of message counters keyed by operation id.
//!
//! The blocking cluster protocols get by with a fixed per-node array of
//! cumulative counters (`aux_counters` in `bgp-smp`) because at most one
//! operation is in flight per node at a time. Nonblocking collectives break
//! that assumption: many operations progress concurrently, each needing its
//! own producer streams (reception, partial-reduce, result) and completion
//! counts. A [`CounterBank`] provides exactly that — a node-wide map from a
//! caller-packed `u64` key (operation id + stream role) to a
//! [`MessageCounter`], created on first touch and retired explicitly when
//! the operation's progress engine garbage-collects it.
//!
//! Two properties make the bank safe to use without the cumulative-base
//! dance of the fixed array:
//!
//! * **Fresh keys start at zero.** Operation ids are never reused (they come
//!   from a monotone per-rank sequence), so a counter obtained for a new key
//!   has no history and waiters can use absolute byte counts.
//! * **Retirement is only map cleanup.** [`retire`](CounterBank::retire)
//!   removes the entry; any participant still holding the `Arc` keeps the
//!   counter alive and sees a frozen final value. Retiring early is a leak
//!   of nothing and a correctness hazard for nobody — the engine retires a
//!   key only after every local participant announced completion, but even
//!   a stray late reader merely observes the final count.

use std::collections::HashMap;
use std::sync::Arc;

use crate::counter::MessageCounter;
use crate::sync::Mutex;

/// A node-wide bank of [`MessageCounter`]s keyed by `u64`.
///
/// Keys are caller-packed (the `bgp-sched` engine uses
/// `op_id << 8 | stream_role`). Lookup is get-or-create; the returned `Arc`
/// should be cached by the caller for the operation's lifetime — the bank
/// lock is for rendezvous, not for the per-chunk hot path.
pub struct CounterBank {
    inner: Mutex<HashMap<u64, Arc<MessageCounter>>>,
}

impl Default for CounterBank {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterBank {
    /// An empty bank.
    pub fn new() -> Self {
        CounterBank {
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// The counter for `key`, created at zero on first touch. All ranks
    /// asking for the same key get the same counter.
    pub fn counter(&self, key: u64) -> Arc<MessageCounter> {
        self.inner
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::new(MessageCounter::new()))
            .clone()
    }

    /// Remove `key` from the bank. Returns whether it was present.
    /// Outstanding `Arc`s stay valid (see the module docs); the key must
    /// simply never be *looked up* again, which the monotone-op-id scheme
    /// guarantees.
    pub fn retire(&self, key: u64) -> bool {
        self.inner.lock().remove(&key).is_some()
    }

    /// Number of live (un-retired) keys — the leak detector for tests.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Is the bank empty (every operation fully retired)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_yields_same_counter() {
        let bank = CounterBank::new();
        let a = bank.counter(42);
        let b = bank.counter(42);
        assert!(Arc::ptr_eq(&a, &b));
        a.publish(10);
        assert_eq!(b.read(), 10);
        assert_eq!(bank.len(), 1);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let bank = CounterBank::new();
        bank.counter(1).publish(5);
        assert_eq!(bank.counter(2).read(), 0);
        assert_eq!(bank.len(), 2);
    }

    #[test]
    fn retire_removes_but_arcs_survive() {
        let bank = CounterBank::new();
        let held = bank.counter(7);
        held.publish(99);
        assert!(bank.retire(7));
        assert!(!bank.retire(7), "double retire reports absence");
        assert!(bank.is_empty());
        // The held Arc still reads the final value.
        assert_eq!(held.read(), 99);
    }

    #[test]
    fn concurrent_get_or_create_converges() {
        let bank = Arc::new(CounterBank::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let bank = bank.clone();
                std::thread::spawn(move || {
                    for key in 0..32u64 {
                        bank.counter(key).publish(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(bank.len(), 32);
        for key in 0..32u64 {
            assert_eq!(bank.counter(key).read(), 4, "key {key}");
        }
    }
}
