//! The Bcast FIFO (paper §IV-B, Figure 1) — the paper's proposed concurrent
//! data structure.
//!
//! Enqueueing works exactly like the [Pt-to-Pt FIFO](crate::ptp_fifo): the
//! producer atomically fetch-and-increments the tail to reserve a unique
//! slot, writes the payload and metadata, and completes the write with a
//! publication store. The difference is on the consumer side: a broadcast
//! message must be read by **every** consumer, so alongside the payload each
//! slot carries an atomic counter initialised to the consumer count; every
//! reader decrements it after copying, and the *last* reader retires the
//! slot and advances the shared head — "the last arriving process completes
//! the dequeue operation".
//!
//! Each consumer tracks its own read cursor (a private ticket count); the
//! shared head exists for space accounting, exactly as in Figure 1.
//!
//! The structure works on any platform with fetch-and-increment, which is
//! the paper's portability argument — and here it runs on real hardware
//! atomics rather than simulated ones.

use std::mem::MaybeUninit;
use std::sync::Arc;

use crate::pad::CachePadded;
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::cell::UnsafeCell;

use crate::model_support;
use crate::spin;

struct Slot<T> {
    /// Cycle tag, same protocol as the Pt-to-Pt FIFO: `ticket` = free for
    /// producer, `ticket + 1` = published, `ticket + capacity` = retired.
    seq: AtomicUsize,
    /// Readers that still need this slot; initialised to the consumer count
    /// before publication ("set to (n-1)" in the paper, where the producer
    /// is the n-th process).
    readers_left: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// The shared state of a Bcast FIFO with a fixed consumer set.
pub struct BcastFifo<T> {
    slots: Box<[Slot<T>]>,
    cap: usize,
    n_consumers: usize,
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    /// Messages actually published (diagnostic). Distinct from `tail`:
    /// a producer increments `tail` to *reserve* a ticket and may then spin
    /// for space, so `tail` counts reservations, not completed enqueues.
    published: CachePadded<AtomicUsize>,
    /// Total per-consumer reads (diagnostic; own line to keep the hot
    /// head/tail words uncontended).
    dequeues: CachePadded<AtomicUsize>,
}

/// Lifetime operation counts of a [`BcastFifo`] (see [`BcastFifo::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoStats {
    /// Messages ever enqueued.
    pub enqueued: u64,
    /// Per-consumer reads, summed over all consumers.
    pub dequeued: u64,
    /// Slots fully retired (read by every consumer).
    pub retired: u64,
}

// SAFETY: same hand-off discipline as PtpFifo; the payload is only read
// between publication (seq == t+1, acquire) and retirement, and readers only
// clone through a shared reference.
unsafe impl<T: Send + Sync> Send for BcastFifo<T> {}
unsafe impl<T: Send + Sync> Sync for BcastFifo<T> {}

impl<T: Clone> BcastFifo<T> {
    /// Create a Bcast FIFO with `capacity` slots and exactly `n_consumers`
    /// consumers. Returns the shared handle (for producers) plus one
    /// [`BcastConsumer`] per consumer.
    ///
    /// In the paper's broadcast use there is one producer (the master rank
    /// that receives from the network) and `n-1` consumers (its node peers),
    /// but nothing restricts the producer side: any thread may enqueue, and
    /// streams from multiple connections can be multiplexed into one FIFO.
    /// `capacity` must be at least 2 (single-slot tag collision — see
    /// [`crate::PtpFifo::new`]).
    pub fn with_consumers(
        capacity: usize,
        n_consumers: usize,
    ) -> (Arc<Self>, Vec<BcastConsumer<T>>) {
        assert!(capacity >= 2, "FIFO capacity must be at least 2");
        assert!(
            n_consumers >= 1,
            "a broadcast FIFO needs at least one consumer"
        );
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                readers_left: AtomicUsize::new(0),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        let fifo = Arc::new(BcastFifo {
            slots,
            cap: capacity,
            n_consumers,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            published: CachePadded::new(AtomicUsize::new(0)),
            dequeues: CachePadded::new(AtomicUsize::new(0)),
        });
        let consumers = (0..n_consumers)
            .map(|_| BcastConsumer {
                fifo: fifo.clone(),
                cursor: 0,
            })
            .collect();
        (fifo, consumers)
    }

    /// Slot count.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Consumer count every message is delivered to.
    #[inline]
    pub fn consumer_count(&self) -> usize {
        self.n_consumers
    }

    /// Messages enqueued and not yet fully retired.
    ///
    /// Diagnostic only: `head` and `tail` are read as two independent
    /// relaxed loads, so concurrent enqueues/retirements can be observed
    /// half-way and the raw difference can transiently exceed the slot
    /// count (a producer increments `tail` *before* waiting for its slot,
    /// so `tail - head` reaches `capacity + waiting producers`). The value
    /// is therefore clamped to `capacity()`; an underflow (head observed
    /// ahead of tail) reads as 0. The result is exact whenever the FIFO is
    /// externally quiesced.
    pub fn len(&self) -> usize {
        self.tail
            .load(Ordering::Relaxed)
            .saturating_sub(self.head.load(Ordering::Relaxed))
            .min(self.cap)
    }

    /// Emptiness snapshot, with the same racy-diagnostic contract as
    /// [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime operation counts `(enqueued, dequeued, retired)`:
    /// messages ever enqueued, per-consumer reads summed over consumers,
    /// and slots fully retired (read by every consumer). Relaxed snapshots;
    /// exact when quiesced.
    ///
    /// `enqueued` counts *publications*, not ticket reservations: a
    /// producer spinning for space in a full FIFO has already incremented
    /// `tail` but has not enqueued anything yet, so `tail` would overcount
    /// by the number of waiting producers.
    pub fn stats(&self) -> FifoStats {
        FifoStats {
            enqueued: self.published.load(Ordering::Relaxed) as u64,
            dequeued: self.dequeues.load(Ordering::Relaxed) as u64,
            retired: self.head.load(Ordering::Relaxed) as u64,
        }
    }

    /// Broadcast `value` to all consumers, spinning while the FIFO is full.
    pub fn enqueue(&self, value: T) {
        let ticket = self.tail.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[ticket % self.cap];
        while slot.seq.load(Ordering::Acquire) != ticket {
            spin();
        }
        // Seeded bug for the model checker: publish before the payload is
        // written (callers can then read uninitialised/stale payload).
        if model_support::seeded("bcast_publish_before_write") {
            slot.readers_left.store(self.n_consumers, Ordering::Relaxed);
            slot.seq.store(ticket + 1, Ordering::Release);
            unsafe { slot.val.with_mut(|p| (*p).write(value)) };
            self.published.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: unique ticket holder for this cycle.
        unsafe { slot.val.with_mut(|p| (*p).write(value)) };
        // Seeded bug: leave `readers_left` at its retired value of 0, so the
        // slot can never retire again (every reader underflows the count).
        if !model_support::seeded("bcast_skip_readers_init") {
            slot.readers_left.store(self.n_consumers, Ordering::Relaxed);
        }
        slot.seq.store(
            ticket + 1,
            // Seeded bug: weaken the publication so payload visibility is
            // no longer ordered before the seq flip.
            model_support::relaxed_if("bcast_publish_relaxed", Ordering::Release),
        );
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    /// Internal: consumer `cursor` reads its next message.
    fn read_at(&self, cursor: usize) -> T {
        let slot = &self.slots[cursor % self.cap];
        while slot.seq.load(Ordering::Acquire) != cursor + 1 {
            spin();
        }
        // SAFETY: published and not yet retired — retirement requires our
        // own decrement below.
        let value = unsafe { slot.val.with(|p| (*p).assume_init_ref().clone()) };
        self.dequeues.fetch_add(1, Ordering::Relaxed);
        // Seeded bug: a relaxed decrement severs the happens-before chain
        // from earlier readers to the last reader's payload drop.
        let dec_order = model_support::relaxed_if("bcast_retire_relaxed", Ordering::AcqRel);
        if slot.readers_left.fetch_sub(1, dec_order) == 1 {
            // Last reader: drop the payload, retire the slot, advance head.
            unsafe { slot.val.with_mut(|p| (*p).assume_init_drop()) };
            self.head.fetch_add(1, Ordering::Relaxed);
            slot.seq.store(cursor + self.cap, Ordering::Release);
        }
        value
    }

    /// Internal: non-blocking variant.
    fn try_read_at(&self, cursor: usize) -> Option<T> {
        let slot = &self.slots[cursor % self.cap];
        if slot.seq.load(Ordering::Acquire) != cursor + 1 {
            return None;
        }
        let value = unsafe { slot.val.with(|p| (*p).assume_init_ref().clone()) };
        self.dequeues.fetch_add(1, Ordering::Relaxed);
        let dec_order = model_support::relaxed_if("bcast_retire_relaxed", Ordering::AcqRel);
        if slot.readers_left.fetch_sub(1, dec_order) == 1 {
            unsafe { slot.val.with_mut(|p| (*p).assume_init_drop()) };
            self.head.fetch_add(1, Ordering::Relaxed);
            slot.seq.store(cursor + self.cap, Ordering::Release);
        }
        Some(value)
    }
}

impl<T> Drop for BcastFifo<T> {
    fn drop(&mut self) {
        // Drop any payloads that were published but not fully consumed.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for ticket in head..tail {
            let cap = self.cap;
            let slot = &mut self.slots[ticket % cap];
            if *slot.seq.get_mut() == ticket + 1 {
                unsafe { slot.val.get_mut().assume_init_drop() };
            }
        }
    }
}

/// One consumer's handle: holds the private read cursor.
pub struct BcastConsumer<T> {
    fifo: Arc<BcastFifo<T>>,
    cursor: usize,
}

impl<T: Clone> BcastConsumer<T> {
    /// Receive the next broadcast message, spinning until one is available.
    pub fn recv(&mut self) -> T {
        let v = self.fifo.read_at(self.cursor);
        self.cursor += 1;
        v
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        let v = self.fifo.try_read_at(self.cursor)?;
        self.cursor += 1;
        Some(v)
    }

    /// Messages this consumer has received so far.
    pub fn received(&self) -> usize {
        self.cursor
    }

    /// The shared FIFO (e.g. to enqueue from a consumer thread).
    pub fn fifo(&self) -> &Arc<BcastFifo<T>> {
        &self.fifo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::stress_iters;
    use std::thread;

    #[test]
    fn every_consumer_sees_every_message_in_order() {
        let n = stress_iters(1_000) as u64;
        let (fifo, mut consumers) = BcastFifo::with_consumers(4, 3);
        let producer = thread::spawn(move || {
            for i in 0..n {
                fifo.enqueue(i);
            }
        });
        let handles: Vec<_> = consumers
            .drain(..)
            .map(|mut c| {
                thread::spawn(move || {
                    for i in 0..n {
                        assert_eq!(c.recv(), i);
                    }
                    c.received()
                })
            })
            .collect();
        producer.join().unwrap();
        for h in handles {
            assert_eq!(h.join().unwrap(), n as usize);
        }
    }

    #[test]
    fn slot_retires_only_after_last_reader() {
        let (fifo, mut consumers) = BcastFifo::with_consumers(2, 2);
        fifo.enqueue(7u32);
        assert_eq!(fifo.len(), 1);
        assert_eq!(consumers[0].recv(), 7);
        // One reader left: slot still occupied, head unmoved.
        assert_eq!(fifo.len(), 1);
        assert_eq!(consumers[1].recv(), 7);
        assert_eq!(fifo.len(), 0);
        // The FIFO is fully reusable now.
        fifo.enqueue(8);
        assert_eq!(consumers[0].recv(), 8);
        assert_eq!(consumers[1].recv(), 8);
    }

    #[test]
    fn stats_track_enqueues_dequeues_and_retires() {
        let (fifo, mut consumers) = BcastFifo::with_consumers(4, 2);
        for i in 0..3u64 {
            fifo.enqueue(i);
        }
        assert_eq!(fifo.len(), 3);
        for c in consumers.iter_mut() {
            for _ in 0..3 {
                c.recv();
            }
        }
        let s = fifo.stats();
        assert_eq!(
            s,
            FifoStats {
                enqueued: 3,
                dequeued: 6,
                retired: 3
            }
        );
        assert!(fifo.is_empty());
    }

    #[test]
    #[should_panic]
    fn capacity_one_rejected() {
        let _ = BcastFifo::<u8>::with_consumers(1, 2);
    }

    #[test]
    fn stats_enqueued_counts_publications_not_reservations() {
        // Regression: `enqueued` used to read `tail`, which a blocked
        // producer has already incremented while spinning for space — so a
        // full FIFO with a waiting producer overcounted. The publication
        // counter must not move until the message is actually in a slot.
        // (The racing variant of this property is model-checked in
        // tests/model.rs, where the checker can halt the producer exactly
        // between reservation and publication.)
        let (fifo, mut consumers) = BcastFifo::with_consumers(2, 1);
        fifo.enqueue(1u32);
        fifo.enqueue(2);
        assert_eq!(fifo.stats().enqueued, 2);
        let blocked = {
            let fifo = fifo.clone();
            thread::spawn(move || fifo.enqueue(3))
        };
        // The blocked producer may reserve its ticket at any time, but can
        // publish only after a slot retires; until we consume, `enqueued`
        // must stay at 2 no matter how long it has been spinning.
        for _ in 0..100 {
            assert!(fifo.stats().enqueued <= 2);
            std::thread::yield_now();
        }
        for expect in 1..=3u32 {
            assert_eq!(consumers[0].recv(), expect);
        }
        blocked.join().unwrap();
        assert_eq!(fifo.stats().enqueued, 3);
    }

    #[test]
    fn try_recv_none_until_published() {
        let (fifo, mut consumers) = BcastFifo::with_consumers(2, 1);
        assert_eq!(consumers[0].try_recv(), None);
        fifo.enqueue(1u8);
        assert_eq!(consumers[0].try_recv(), Some(1));
        assert_eq!(consumers[0].try_recv(), None);
    }

    #[test]
    fn backpressure_from_slowest_consumer() {
        // A tiny FIFO with one fast and one slow consumer: the producer and
        // the fast consumer must both be throttled by the slow one, and no
        // message may be lost or reordered.
        let (fifo, mut consumers) = BcastFifo::with_consumers(2, 2);
        let n = stress_iters(5_000) as u64;
        let producer = thread::spawn(move || {
            for i in 0..n {
                fifo.enqueue(i);
            }
        });
        let fast = {
            let mut c = consumers.remove(0);
            thread::spawn(move || {
                for i in 0..n {
                    assert_eq!(c.recv(), i);
                }
            })
        };
        let slow = {
            let mut c = consumers.remove(0);
            thread::spawn(move || {
                for i in 0..n {
                    if i % 64 == 0 {
                        std::thread::yield_now();
                    }
                    assert_eq!(c.recv(), i);
                }
            })
        };
        producer.join().unwrap();
        fast.join().unwrap();
        slow.join().unwrap();
    }

    #[test]
    fn multiplexed_producers_interleave_without_loss() {
        // Paper: "broadcast streams from multiple connections can be
        // multiplexed into the same FIFO" — metadata carries the connection
        // id. Two producers, three consumers; each consumer must see every
        // message of each connection in that connection's order.
        let (fifo, mut consumers) = BcastFifo::with_consumers(8, 3);
        let per = stress_iters(2_000) as u64;
        let producers: Vec<_> = (0..2u64)
            .map(|conn| {
                let fifo = fifo.clone();
                thread::spawn(move || {
                    for i in 0..per {
                        fifo.enqueue((conn, i));
                    }
                })
            })
            .collect();
        let handles: Vec<_> = consumers
            .drain(..)
            .map(|mut c| {
                thread::spawn(move || {
                    let mut next = [0u64; 2];
                    for _ in 0..(2 * per) {
                        let (conn, i) = c.recv();
                        assert_eq!(i, next[conn as usize], "conn {conn} reordered");
                        next[conn as usize] += 1;
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn payload_drop_correctness() {
        // Arc payloads: after the FIFO is dropped — with some messages
        // consumed by everyone, some by only one reader, and some by none —
        // the refcount must return to exactly 1 (no leak, no double-drop).
        // Note a producer can only run `capacity` tickets ahead of the
        // slowest reader, so all enqueues stay within capacity here.
        let probe = Arc::new(());
        {
            let (fifo, mut consumers) = BcastFifo::with_consumers(4, 2);
            for _ in 0..3 {
                fifo.enqueue(probe.clone());
            }
            // Consumer 0 reads all three; consumer 1 reads one; two
            // messages stay live in their slots at drop time.
            for _ in 0..3 {
                consumers[0].recv();
            }
            consumers[1].recv();
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    #[test]
    #[should_panic]
    fn zero_consumers_rejected() {
        let _ = BcastFifo::<u8>::with_consumers(4, 0);
    }

    #[test]
    fn heavy_contention_smoke() {
        // 1 producer, 3 consumers (the quad-mode shape), small FIFO, many
        // messages with a checksum over payloads.
        let (fifo, mut consumers) = BcastFifo::with_consumers(4, 3);
        let n = stress_iters(20_000) as u64;
        let expect: u64 = (0..n).sum();
        let producer = thread::spawn(move || {
            for i in 0..n {
                fifo.enqueue(i);
            }
        });
        let handles: Vec<_> = consumers
            .drain(..)
            .map(|mut c| thread::spawn(move || (0..n).map(|_| c.recv()).sum::<u64>()))
            .collect();
        producer.join().unwrap();
        for h in handles {
            assert_eq!(h.join().unwrap(), expect);
        }
    }
}
