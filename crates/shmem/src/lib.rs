//! # bgp-shmem — the paper's intra-node communication primitives, for real
//!
//! Unlike the network (which must be simulated — see `bgp-sim`/`bgp-dcmf`),
//! the intra-node mechanisms of the paper are ordinary cache-coherent
//! shared-memory algorithms and run natively. This crate implements them
//! exactly as §IV describes, with real atomics, and `bgp-smp` runs them
//! across real threads:
//!
//! * [`ptp_fifo::PtpFifo`] — the Point-to-Point FIFO (§IV-A): slots reserved
//!   by an atomic fetch-and-increment on the tail, drained in reservation
//!   order.
//! * [`bcast_fifo::BcastFifo`] — the Bcast FIFO (§IV-B): same reservation
//!   protocol, but a slot retires only after *every* consumer has read it,
//!   tracked by a per-slot atomic reader count initialised to `n-1`.
//! * [`counter::MessageCounter`] / [`counter::CompletionCounter`] — the
//!   software message counters (§IV-C): a byte counter published by the
//!   producer and polled by consumers, mirroring the DMA hardware counters
//!   at user level; plus the atomic completion counter the master waits on
//!   before reusing its buffer.
//! * [`region::SharedRegion`] / [`window::WindowRegistry`] — the shared
//!   address space: a peer's buffer made directly readable, standing in for
//!   CNK's process-window system calls (which cannot exist off-BG/P; the
//!   registry also keeps the map/cache statistics the simulator charges
//!   time for).
//!
//! ## Memory-ordering discipline
//!
//! Every publication follows the release/acquire message-passing pattern:
//! payload bytes are written plainly, then the flag/counter is stored (or
//! fetch-added) with `Release`; consumers observe it with `Acquire` before
//! touching the payload. Slot recycling in the FIFOs uses the same pattern
//! in the opposite direction. No `SeqCst` is needed anywhere — each
//! synchronization is pairwise.

pub mod bank;
pub mod bcast_fifo;
pub mod counter;
pub mod mutex_fifo;
pub mod pad;
pub mod ptp_fifo;
pub mod region;
pub mod seqlock;
pub mod sync;
pub mod window;

#[cfg(not(feature = "model"))]
pub mod proc;

pub use bank::CounterBank;
pub use bcast_fifo::{BcastConsumer, BcastFifo, FifoStats};
pub use counter::{CompletionCounter, MessageCounter};
pub use mutex_fifo::{MutexBcastConsumer, MutexBcastFifo};
pub use pad::CachePadded;
pub use ptp_fifo::PtpFifo;
pub use region::SharedRegion;
pub use seqlock::{HeapSeqWords, SeqLock, SeqWords};
pub use window::{WindowRegistry, WindowStats};

/// Wait hint used by all blocking primitives in this crate.
///
/// On a real BG/P node each rank owns a core, so pure `spin_loop` is right;
/// on an oversubscribed host (tests/benches with more rank-threads than
/// cores) a waiting thread must yield or the thread it waits on may not be
/// scheduled. Yielding costs little on dedicated cores and is mandatory for
/// correctness-of-progress when oversubscribed, so we always yield.
///
/// Under the `model` feature this routes to `bgp_check::thread::spin`,
/// which parks the model thread until another thread performs a store —
/// that is what lets the checker explore spin-based protocols exhaustively
/// and report a wait nobody can satisfy as a deadlock.
#[inline]
pub fn spin() {
    #[cfg(feature = "model")]
    bgp_check::thread::spin();
    #[cfg(not(feature = "model"))]
    std::thread::yield_now();
}

/// Named mutation points for the model checker's self-tests.
///
/// The primitives keep a handful of seeded bugs in their real code paths
/// (skip an initialisation, weaken a publication's ordering, publish before
/// the payload write). Each asks [`model_support::seeded`] whether it is
/// active; the answer can only be `true` inside a `bgp_check` model run
/// whose `Config::mutate(..)` named it, so the hooks are inert — and the
/// non-`model` build compiles them to constants — everywhere else.
/// See `tests/model.rs` for the self-tests that prove the checker catches
/// every one of these bugs.
#[doc(hidden)]
pub mod model_support {
    pub use crate::sync::atomic::Ordering;

    /// Is the named seeded bug active? Always `false` outside a model run.
    #[cfg(feature = "model")]
    pub fn seeded(name: &str) -> bool {
        bgp_check::mutation::active(name)
    }

    /// Is the named seeded bug active? Always `false` without `model`.
    #[cfg(not(feature = "model"))]
    #[inline(always)]
    pub fn seeded(_name: &str) -> bool {
        false
    }

    /// `Ordering::Relaxed` if the named mutation is active, else `normal` —
    /// the hook for "weaken this store/RMW" seeded bugs.
    #[inline(always)]
    pub fn relaxed_if(name: &str, normal: Ordering) -> Ordering {
        if seeded(name) {
            Ordering::Relaxed
        } else {
            normal
        }
    }
}

/// Helpers for the workspace's own stress tests (not part of the library
/// API; `pub` so the smp crate and the top-level integration tests share
/// one policy).
pub mod testing {
    /// Scale a stress-test iteration count to the host.
    ///
    /// The spin-based primitives make no progress while a spinning thread
    /// holds the only core, so on low-core CI hosts the full iteration
    /// counts spend almost all their time in `yield` storms. Schedule
    /// *coverage* saturates long before the full count anyway — and the
    /// schedule-sensitive bugs these counts were hoping to hit are now
    /// covered deterministically by the `bgp-check` model tests.
    ///
    /// Policy: with 4+ available cores (a real parallel host) or
    /// `BGP_STRESS_FULL=1` in the environment (CI's full-volume run), use
    /// the full count; otherwise scale it by `cores/8`, keeping at least
    /// `min(full, 64)` iterations so every code path still runs.
    pub fn stress_iters(full: usize) -> usize {
        if std::env::var_os("BGP_STRESS_FULL").is_some_and(|v| v == "1") {
            return full;
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores >= 4 {
            return full;
        }
        (full * cores / 8).clamp(full.min(64), full)
    }
}
