//! # bgp-shmem — the paper's intra-node communication primitives, for real
//!
//! Unlike the network (which must be simulated — see `bgp-sim`/`bgp-dcmf`),
//! the intra-node mechanisms of the paper are ordinary cache-coherent
//! shared-memory algorithms and run natively. This crate implements them
//! exactly as §IV describes, with real atomics, and `bgp-smp` runs them
//! across real threads:
//!
//! * [`ptp_fifo::PtpFifo`] — the Point-to-Point FIFO (§IV-A): slots reserved
//!   by an atomic fetch-and-increment on the tail, drained in reservation
//!   order.
//! * [`bcast_fifo::BcastFifo`] — the Bcast FIFO (§IV-B): same reservation
//!   protocol, but a slot retires only after *every* consumer has read it,
//!   tracked by a per-slot atomic reader count initialised to `n-1`.
//! * [`counter::MessageCounter`] / [`counter::CompletionCounter`] — the
//!   software message counters (§IV-C): a byte counter published by the
//!   producer and polled by consumers, mirroring the DMA hardware counters
//!   at user level; plus the atomic completion counter the master waits on
//!   before reusing its buffer.
//! * [`region::SharedRegion`] / [`window::WindowRegistry`] — the shared
//!   address space: a peer's buffer made directly readable, standing in for
//!   CNK's process-window system calls (which cannot exist off-BG/P; the
//!   registry also keeps the map/cache statistics the simulator charges
//!   time for).
//!
//! ## Memory-ordering discipline
//!
//! Every publication follows the release/acquire message-passing pattern:
//! payload bytes are written plainly, then the flag/counter is stored (or
//! fetch-added) with `Release`; consumers observe it with `Acquire` before
//! touching the payload. Slot recycling in the FIFOs uses the same pattern
//! in the opposite direction. No `SeqCst` is needed anywhere — each
//! synchronization is pairwise.

pub mod bcast_fifo;
pub mod counter;
pub mod mutex_fifo;
pub mod pad;
pub mod ptp_fifo;
pub mod region;
pub mod sync;
pub mod window;

pub use bcast_fifo::{BcastConsumer, BcastFifo, FifoStats};
pub use counter::{CompletionCounter, MessageCounter};
pub use mutex_fifo::{MutexBcastConsumer, MutexBcastFifo};
pub use pad::CachePadded;
pub use ptp_fifo::PtpFifo;
pub use region::SharedRegion;
pub use window::{WindowRegistry, WindowStats};

/// Wait hint used by all blocking primitives in this crate.
///
/// On a real BG/P node each rank owns a core, so pure `spin_loop` is right;
/// on an oversubscribed host (tests/benches with more rank-threads than
/// cores) a waiting thread must yield or the thread it waits on may not be
/// scheduled. Yielding costs little on dedicated cores and is mandatory for
/// correctness-of-progress when oversubscribed, so we always yield.
#[inline]
pub(crate) fn spin() {
    std::thread::yield_now();
}
