//! Shared application buffers.
//!
//! On BG/P a process window makes a peer's *application buffer* directly
//! addressable. Off-BG/P the closest equivalent with identical semantics is
//! a byte region shared between threads, with writes and reads coordinated
//! by the message counters (release/acquire), never by locks.
//!
//! [`SharedRegion`] is that region. Raw byte access is `unsafe` with an
//! explicit contract; the safe pairings used by the collectives —
//! "producer writes `[a, b)` then publishes a counter; consumer observes the
//! counter then reads `[a, b)`" — are provided by `bgp-smp`'s collectives
//! and validated by the stress tests there and in
//! [`crate::counter`].

use std::cell::UnsafeCell;

/// A fixed-size byte region shareable across threads.
///
/// # Safety contract for the `unsafe` accessors
///
/// A byte may be written by at most one thread at a time, and a read of a
/// byte must happen-after the write that produced it (established through a
/// `Release` publication / `Acquire` observation of a
/// [`MessageCounter`](crate::MessageCounter) or FIFO slot flag). The
/// collectives uphold this by construction: ranges are partitioned between
/// writers, and every consumer copy is gated on a counter.
pub struct SharedRegion {
    data: Box<[UnsafeCell<u8>]>,
}

// SAFETY: access discipline is delegated to callers per the contract above.
unsafe impl Send for SharedRegion {}
unsafe impl Sync for SharedRegion {}

impl SharedRegion {
    /// Allocate a zeroed region of `len` bytes.
    pub fn new(len: usize) -> Self {
        let data = (0..len).map(|_| UnsafeCell::new(0u8)).collect();
        SharedRegion { data }
    }

    /// Region length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the region is zero-sized.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Write `src` at `offset`.
    ///
    /// # Safety
    /// Caller must guarantee exclusive write access to `[offset,
    /// offset+src.len())` for the duration of the call, and readers must be
    /// ordered after it (see type-level contract).
    pub unsafe fn write(&self, offset: usize, src: &[u8]) {
        assert!(
            offset + src.len() <= self.data.len(),
            "write of {} bytes at {} exceeds region of {}",
            src.len(),
            offset,
            self.data.len()
        );
        if src.is_empty() {
            return;
        }
        let dst = self.data[offset].get();
        // SAFETY: bounds checked above; exclusivity per contract.
        unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), dst, src.len()) };
    }

    /// Read `dst.len()` bytes from `offset` into `dst`.
    ///
    /// # Safety
    /// Caller must guarantee the range was fully written by operations that
    /// happen-before this call and that no concurrent writer overlaps it.
    pub unsafe fn read(&self, offset: usize, dst: &mut [u8]) {
        assert!(
            offset + dst.len() <= self.data.len(),
            "read of {} bytes at {} exceeds region of {}",
            dst.len(),
            offset,
            self.data.len()
        );
        if dst.is_empty() {
            return;
        }
        let src = self.data[offset].get();
        // SAFETY: bounds checked above; happens-before per contract.
        unsafe { std::ptr::copy_nonoverlapping(src, dst.as_mut_ptr(), dst.len()) };
    }

    /// Copy `len` bytes from `src` (at `src_off`) into this region at
    /// `dst_off` — the "direct copy from the master's application buffer"
    /// primitive.
    ///
    /// # Safety
    /// Combines the contracts of [`read`](Self::read) and
    /// [`write`](Self::write); additionally the two regions must not be the
    /// same region with overlapping ranges.
    pub unsafe fn copy_from(&self, dst_off: usize, src: &SharedRegion, src_off: usize, len: usize) {
        assert!(src_off + len <= src.len(), "source range out of bounds");
        assert!(
            dst_off + len <= self.len(),
            "destination range out of bounds"
        );
        if len == 0 {
            return;
        }
        let s = src.data[src_off].get();
        let d = self.data[dst_off].get();
        // SAFETY: bounds checked; disjointness per contract.
        unsafe { std::ptr::copy_nonoverlapping(s, d, len) };
    }

    /// Borrow `len` bytes at `offset` as a slice for an in-place read — the
    /// zero-copy counterpart of [`read`](Self::read), for consumers (reduce
    /// kernels, slot fills) that want the region bytes without staging them
    /// through a caller buffer.
    ///
    /// # Safety
    /// The contract of [`read`](Self::read), extended over the whole call:
    /// no writer may touch `[offset, offset + len)` while `f` runs.
    pub unsafe fn with_bytes<R>(&self, offset: usize, len: usize, f: impl FnOnce(&[u8]) -> R) -> R {
        assert!(
            offset + len <= self.data.len(),
            "borrow of {} bytes at {} exceeds region of {}",
            len,
            offset,
            self.data.len()
        );
        if len == 0 {
            return f(&[]);
        }
        // SAFETY: `UnsafeCell<u8>` is layout-identical to `u8` and the cells
        // are contiguous; bounds checked above, exclusivity per contract.
        unsafe { f(std::slice::from_raw_parts(self.data[offset].get(), len)) }
    }

    /// Borrow `len` bytes at `offset` as a mutable slice for an in-place
    /// write — the zero-copy counterpart of [`write`](Self::write).
    ///
    /// # Safety
    /// The contract of [`write`](Self::write), extended over the whole call:
    /// no other access may touch `[offset, offset + len)` while `f` runs.
    pub unsafe fn with_bytes_mut<R>(
        &self,
        offset: usize,
        len: usize,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> R {
        assert!(
            offset + len <= self.data.len(),
            "borrow of {} bytes at {} exceeds region of {}",
            len,
            offset,
            self.data.len()
        );
        if len == 0 {
            return f(&mut []);
        }
        // SAFETY: as in `with_bytes`, plus exclusive access per contract.
        unsafe { f(std::slice::from_raw_parts_mut(self.data[offset].get(), len)) }
    }

    /// Snapshot the whole region into a `Vec` (test/diagnostic helper).
    ///
    /// # Safety
    /// All writers must have been ordered before this call.
    pub unsafe fn snapshot(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len()];
        // SAFETY: per contract.
        unsafe { self.read(0, &mut out) };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MessageCounter;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn write_then_read_round_trip() {
        let r = SharedRegion::new(64);
        assert_eq!(r.len(), 64);
        unsafe {
            r.write(10, b"hello");
            let mut buf = [0u8; 5];
            r.read(10, &mut buf);
            assert_eq!(&buf, b"hello");
        }
    }

    #[test]
    fn copy_between_regions() {
        let a = SharedRegion::new(32);
        let b = SharedRegion::new(32);
        unsafe {
            a.write(0, &[1, 2, 3, 4]);
            b.copy_from(8, &a, 0, 4);
            let mut buf = [0u8; 4];
            b.read(8, &mut buf);
            assert_eq!(buf, [1, 2, 3, 4]);
        }
    }

    #[test]
    fn zero_length_ops_are_noops() {
        let r = SharedRegion::new(0);
        assert!(r.is_empty());
        unsafe {
            r.write(0, &[]);
            r.read(0, &mut []);
        }
        let a = SharedRegion::new(4);
        unsafe { a.copy_from(0, &r, 0, 0) };
    }

    #[test]
    fn in_place_borrows_see_and_mutate_the_region() {
        let r = SharedRegion::new(16);
        unsafe {
            r.with_bytes_mut(4, 8, |b| {
                assert_eq!(b.len(), 8);
                for (i, x) in b.iter_mut().enumerate() {
                    *x = i as u8 + 1;
                }
            });
            r.with_bytes(4, 8, |b| assert_eq!(b, [1, 2, 3, 4, 5, 6, 7, 8]));
            let mut out = [0u8; 2];
            r.read(5, &mut out);
            assert_eq!(out, [2, 3]);
            // Zero-length borrows are valid anywhere in bounds.
            r.with_bytes(16, 0, |b| assert!(b.is_empty()));
            r.with_bytes_mut(0, 0, |b| assert!(b.is_empty()));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds region")]
    fn out_of_bounds_borrow_panics() {
        let r = SharedRegion::new(4);
        unsafe { r.with_bytes(2, 4, |_| ()) };
    }

    #[test]
    #[should_panic(expected = "exceeds region")]
    fn out_of_bounds_write_panics() {
        let r = SharedRegion::new(4);
        unsafe { r.write(2, &[0u8; 4]) };
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_copy_panics() {
        let a = SharedRegion::new(4);
        let b = SharedRegion::new(4);
        unsafe { b.copy_from(0, &a, 2, 4) };
    }

    #[test]
    fn counter_gated_cross_thread_publication() {
        // The exact §V-A pattern: master writes its application buffer and
        // publishes through a counter; three peers chase the counter and
        // copy directly out of the master's region.
        const LEN: usize = 1 << 16;
        const CHUNK: usize = 4096;
        let master = Arc::new(SharedRegion::new(LEN));
        let counter = Arc::new(MessageCounter::new());

        let producer = {
            let master = master.clone();
            let counter = counter.clone();
            thread::spawn(move || {
                let mut off = 0;
                while off < LEN {
                    let chunk: Vec<u8> = (off..off + CHUNK).map(|i| (i % 255) as u8).collect();
                    // SAFETY: single writer; readers gated on the counter.
                    unsafe { master.write(off, &chunk) };
                    counter.publish(CHUNK as u64);
                    off += CHUNK;
                }
            })
        };

        let peers: Vec<_> = (0..3)
            .map(|_| {
                let master = master.clone();
                let counter = counter.clone();
                thread::spawn(move || {
                    let dst = SharedRegion::new(LEN);
                    let mut seen = 0usize;
                    while seen < LEN {
                        let avail = counter.wait_for(seen as u64 + 1) as usize;
                        // SAFETY: [seen, avail) published before the counter
                        // we acquired.
                        unsafe { dst.copy_from(seen, &master, seen, avail - seen) };
                        seen = avail;
                    }
                    let snap = unsafe { dst.snapshot() };
                    for (i, &b) in snap.iter().enumerate() {
                        assert_eq!(b, (i % 255) as u8, "byte {i}");
                    }
                })
            })
            .collect();

        producer.join().unwrap();
        for p in peers {
            p.join().unwrap();
        }
    }
}
