//! The process-window registry: shared address space between rank-threads.
//!
//! On BG/P, rank A reads rank B's buffer by (1) B translating its virtual
//! address to physical and (2) A mapping that physical range into its own
//! address space — two system calls, cached by the MPI stack when buffers
//! repeat (paper §III-B, §VI-A). Between threads the mapping itself is free
//! — every thread already sees the whole address space — so the registry's
//! job is the part that still matters off-BG/P:
//!
//! * the *rendezvous*: a rank exposes `(tag → region)` and peers look it up;
//! * the *accounting*: map calls and cache hits/misses are counted so the
//!   simulator and harness can charge the Figure 8 syscall costs for
//!   exactly the operations a real CNK stack would issue.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::RwLock;

use crate::region::SharedRegion;

/// Statistics mirroring what the CNK window path would have cost.
#[derive(Debug, Default)]
pub struct WindowStats {
    /// `expose` calls (virtual→physical translations on the owner side).
    pub exposes: AtomicU64,
    /// `map` calls that missed the cache (each costs the syscall pair).
    pub map_misses: AtomicU64,
    /// `map` calls served from the cache.
    pub map_hits: AtomicU64,
}

impl WindowStats {
    /// Snapshot as `(exposes, misses, hits)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.exposes.load(Ordering::Relaxed),
            self.map_misses.load(Ordering::Relaxed),
            self.map_hits.load(Ordering::Relaxed),
        )
    }
}

/// A node-wide registry of exposed buffers, keyed by `(owner rank, tag)`.
///
/// Cloneable handle (`Arc` inside); one registry per node.
#[derive(Clone)]
pub struct WindowRegistry {
    inner: Arc<Inner>,
}

struct Inner {
    exposed: RwLock<HashMap<(u32, u64), Arc<SharedRegion>>>,
    stats: WindowStats,
}

impl Default for WindowRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        WindowRegistry {
            inner: Arc::new(Inner {
                exposed: RwLock::new(HashMap::new()),
                stats: WindowStats::default(),
            }),
        }
    }

    /// Owner side: expose `region` under `(owner, tag)`, replacing any
    /// previous exposure with that key. This is the virtual→physical
    /// translation step on BG/P.
    pub fn expose(&self, owner: u32, tag: u64, region: Arc<SharedRegion>) {
        self.inner.stats.exposes.fetch_add(1, Ordering::Relaxed);
        self.inner.exposed.write().insert((owner, tag), region);
    }

    /// Remove an exposure (e.g. when the application frees the buffer).
    pub fn unexpose(&self, owner: u32, tag: u64) {
        self.inner.exposed.write().remove(&(owner, tag));
    }

    /// Peer side: map `(owner, tag)`. `cached` reports whether the *caller's*
    /// cache already held it — pass `false` on first use, `true` on reuse —
    /// so the stats ledger matches what a CNK stack would really pay.
    /// Returns `None` if the owner has not exposed the tag yet.
    pub fn map(&self, owner: u32, tag: u64, cached: bool) -> Option<Arc<SharedRegion>> {
        let region = self.inner.exposed.read().get(&(owner, tag)).cloned()?;
        if cached {
            self.inner.stats.map_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.stats.map_misses.fetch_add(1, Ordering::Relaxed);
        }
        Some(region)
    }

    /// Spin until `(owner, tag)` is exposed, then map it. Collectives use
    /// this at operation start: the master exposes its application buffer,
    /// peers block momentarily until it appears.
    pub fn map_blocking(&self, owner: u32, tag: u64, cached: bool) -> Arc<SharedRegion> {
        loop {
            if let Some(r) = self.map(owner, tag, cached) {
                return r;
            }
            std::thread::yield_now();
        }
    }

    /// Peer side with automatic cache classification: the caller supplies
    /// its private set of region pointers already mapped (its window cache);
    /// a region seen before counts as a hit, a new one as a miss. Blocks
    /// until the tag is exposed.
    pub fn map_auto_blocking(
        &self,
        owner: u32,
        tag: u64,
        seen: &mut std::collections::HashSet<usize>,
    ) -> Arc<SharedRegion> {
        let region = loop {
            if let Some(r) = self.inner.exposed.read().get(&(owner, tag)).cloned() {
                break r;
            }
            std::thread::yield_now();
        };
        let ptr = Arc::as_ptr(&region) as usize;
        if seen.insert(ptr) {
            self.inner.stats.map_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.stats.map_hits.fetch_add(1, Ordering::Relaxed);
        }
        region
    }

    /// Non-blocking form of [`map_auto_blocking`](Self::map_auto_blocking):
    /// `None` if the tag is not exposed yet (no stats are charged), so
    /// pollers — the nonblocking progress engine's `test()` path — can
    /// retry later without ever parking.
    pub fn try_map_auto(
        &self,
        owner: u32,
        tag: u64,
        seen: &mut std::collections::HashSet<usize>,
    ) -> Option<Arc<SharedRegion>> {
        let region = self.inner.exposed.read().get(&(owner, tag)).cloned()?;
        let ptr = Arc::as_ptr(&region) as usize;
        if seen.insert(ptr) {
            self.inner.stats.map_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.stats.map_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some(region)
    }

    /// The accounting ledger.
    pub fn stats(&self) -> &WindowStats {
        &self.inner.stats
    }

    /// Number of currently exposed buffers.
    pub fn exposed_count(&self) -> usize {
        self.inner.exposed.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn expose_then_map() {
        let reg = WindowRegistry::new();
        let region = Arc::new(SharedRegion::new(128));
        unsafe { region.write(0, b"window") };
        reg.expose(2, 77, region);
        let mapped = reg.map(2, 77, false).expect("mapped");
        let mut buf = [0u8; 6];
        unsafe { mapped.read(0, &mut buf) };
        assert_eq!(&buf, b"window");
        assert_eq!(reg.stats().snapshot(), (1, 1, 0));
    }

    #[test]
    fn map_missing_returns_none() {
        let reg = WindowRegistry::new();
        assert!(reg.map(0, 0, false).is_none());
    }

    #[test]
    fn cache_accounting() {
        let reg = WindowRegistry::new();
        reg.expose(1, 1, Arc::new(SharedRegion::new(8)));
        reg.map(1, 1, false);
        reg.map(1, 1, true);
        reg.map(1, 1, true);
        let (exposes, misses, hits) = reg.stats().snapshot();
        assert_eq!((exposes, misses, hits), (1, 1, 2));
    }

    #[test]
    fn re_expose_replaces() {
        let reg = WindowRegistry::new();
        let a = Arc::new(SharedRegion::new(4));
        let b = Arc::new(SharedRegion::new(8));
        reg.expose(0, 5, a);
        reg.expose(0, 5, b);
        assert_eq!(reg.map(0, 5, true).unwrap().len(), 8);
        assert_eq!(reg.exposed_count(), 1);
        reg.unexpose(0, 5);
        assert_eq!(reg.exposed_count(), 0);
    }

    #[test]
    fn map_blocking_waits_for_exposure() {
        let reg = WindowRegistry::new();
        let reg2 = reg.clone();
        let waiter = thread::spawn(move || {
            let r = reg2.map_blocking(3, 9, false);
            r.len()
        });
        // Give the waiter a moment to start spinning, then expose.
        thread::sleep(std::time::Duration::from_millis(5));
        reg.expose(3, 9, Arc::new(SharedRegion::new(321)));
        assert_eq!(waiter.join().unwrap(), 321);
    }

    #[test]
    fn registry_handle_is_shared() {
        let reg = WindowRegistry::new();
        let clone = reg.clone();
        clone.expose(0, 1, Arc::new(SharedRegion::new(1)));
        assert_eq!(reg.exposed_count(), 1);
    }
}
