//! The cross-process shared segment: a file-backed mapping with a
//! versioned header.
//!
//! On a real BG/P node the four cores run separate CNK *processes* whose
//! communication memory is physically shared; the thread-backed runtimes
//! in this workspace only approximate that. This module supplies the
//! missing substrate: one process [`ShmSegment::create`]s a file (under
//! `$BGP_SHM_DIR`, else `/dev/shm`, else the system temp dir), maps it
//! shared, and hands the path to peer processes, which
//! [`ShmSegment::open`] it and see the same physical pages. Everything
//! the in-process primitives need — atomics, release/acquire publication
//! — works identically on mapped memory, so the protocols layered on top
//! (`bgp-smp`'s chunk channels, the [`crate::seqlock`] records) run
//! unchanged.
//!
//! ## Segment layout
//!
//! ```text
//! offset   width  field
//! 0        8      magic   "BGPSHM01" (validated on open)
//! 8        8      version SEGMENT_VERSION (mismatch = typed error)
//! 16       8      total length in bytes (validated on open)
//! 24       8      poison word (atomic; 0 = healthy, else fault code)
//! 32       8      attach counter (atomic)
//! 40       64     8 geometry words (creator-defined, e.g. m/n/chunk/cap)
//! 104      24     reserved (zero)
//! 128      …      payload, 8-byte aligned
//! ```
//!
//! The header is written *before* any peer can open the file (create →
//! write → publish the path), so plain stores suffice there; the poison
//! and attach words are the only header fields touched after publication
//! and are accessed as atomics.
//!
//! ## Crash containment
//!
//! A peer that detects a wedged or dead neighbour stores a nonzero code
//! into the poison word ([`ShmSegment::poison`]); every other peer polls
//! [`ShmSegment::poisoned`] in its wait loops and converts the code into
//! a clean error instead of spinning forever. The creator unlinks the
//! file on drop; mappings already established survive the unlink (POSIX
//! keeps the pages until the last unmap), so teardown order is free.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

mod sysmap;

/// Current on-disk layout version (bump on any header/layout change).
pub const SEGMENT_VERSION: u64 = 1;

/// Header bytes before the payload.
pub const SEGMENT_HEADER: usize = 128;

/// Number of creator-defined geometry words in the header.
pub const GEOMETRY_WORDS: usize = 8;

const MAGIC: u64 = u64::from_le_bytes(*b"BGPSHM01");

const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 8;
const OFF_TOTAL_LEN: usize = 16;
const OFF_POISON: usize = 24;
const OFF_ATTACHED: usize = 32;
const OFF_GEOMETRY: usize = 40;

/// Typed failures of segment creation, attach, and health checks.
#[derive(Debug)]
pub enum ShmError {
    /// Filesystem or mmap failure.
    Io(std::io::Error),
    /// The file is not a segment (bad magic) — wrong path or truncated.
    BadMagic {
        /// The first 8 bytes actually found.
        found: u64,
    },
    /// The segment was written by an incompatible layout version.
    VersionMismatch {
        /// Version stored in the segment.
        found: u64,
        /// Version this build understands.
        expected: u64,
    },
    /// The file is shorter than its header claims (torn create or
    /// truncation).
    LengthMismatch {
        /// Length recorded in the header.
        header: u64,
        /// Actual file length.
        file: u64,
    },
    /// A peer marked the segment faulted with this code.
    Poisoned {
        /// The fault code stored by [`ShmSegment::poison`].
        code: u64,
    },
}

impl std::fmt::Display for ShmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShmError::Io(e) => write!(f, "segment I/O failed: {e}"),
            ShmError::BadMagic { found } => {
                write!(f, "not a bgp segment (magic {found:#018x})")
            }
            ShmError::VersionMismatch { found, expected } => write!(
                f,
                "segment layout version {found} but this build expects {expected}"
            ),
            ShmError::LengthMismatch { header, file } => write!(
                f,
                "segment header claims {header} bytes but the file has {file}"
            ),
            ShmError::Poisoned { code } => {
                write!(f, "segment poisoned by a peer (code {code})")
            }
        }
    }
}

impl std::error::Error for ShmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ShmError {
    fn from(e: std::io::Error) -> Self {
        ShmError::Io(e)
    }
}

/// The calling process's parent pid (`getppid`). Worker processes record
/// it at startup and exit when it changes — an orphaned worker (its parent
/// died without a clean shutdown) must not spin forever on a dead segment.
pub fn parent_pid() -> u32 {
    sysmap::sys_getppid()
}

/// Where segment files live: `$BGP_SHM_DIR` if set, else `/dev/shm` if it
/// exists (a ram-backed tmpfs on Linux), else the system temp dir.
pub fn segment_dir() -> PathBuf {
    if let Some(d) = std::env::var_os("BGP_SHM_DIR") {
        return PathBuf::from(d);
    }
    let shm = Path::new("/dev/shm");
    if shm.is_dir() {
        return shm.to_path_buf();
    }
    std::env::temp_dir()
}

/// A mapped shared-memory segment (see the module docs for the layout).
///
/// The creator owns the backing file and unlinks it on drop; openers
/// unmap only. All accessors hand out pointers/atomics into the mapping,
/// which stays valid for the lifetime of the `ShmSegment`.
#[derive(Debug)]
pub struct ShmSegment {
    ptr: *mut u8,
    total_len: usize,
    path: PathBuf,
    owner: bool,
}

// SAFETY: the mapping is plain shared memory; all mutation of shared
// words goes through atomics (or the protocols layered on top, which are
// responsible for their own release/acquire discipline — the same
// contract as `SharedRegion`).
unsafe impl Send for ShmSegment {}
unsafe impl Sync for ShmSegment {}

static SEGMENT_SALT: AtomicUsize = AtomicUsize::new(0);

impl ShmSegment {
    /// Create a fresh segment with `payload_len` payload bytes and the
    /// given geometry words (at most [`GEOMETRY_WORDS`]), map it, and
    /// write the header. The file is named uniquely under
    /// [`segment_dir`]; pass [`ShmSegment::path`] to peers.
    pub fn create(payload_len: usize, geometry: &[u64]) -> Result<ShmSegment, ShmError> {
        assert!(geometry.len() <= GEOMETRY_WORDS, "too many geometry words");
        let total_len = SEGMENT_HEADER + payload_len;
        let salt = SEGMENT_SALT.fetch_add(1, Ordering::Relaxed);
        let path = segment_dir().join(format!("bgp-proc-{}-{}.seg", std::process::id(), salt));
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        // Build the header in full before extending the file to its final
        // length: a peer that races `open` on a short file gets a clean
        // `LengthMismatch`/`BadMagic`, never a half-valid header.
        let mut header = [0u8; SEGMENT_HEADER];
        header[OFF_MAGIC..OFF_MAGIC + 8].copy_from_slice(&MAGIC.to_le_bytes());
        header[OFF_VERSION..OFF_VERSION + 8].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
        header[OFF_TOTAL_LEN..OFF_TOTAL_LEN + 8].copy_from_slice(&(total_len as u64).to_le_bytes());
        for (i, g) in geometry.iter().enumerate() {
            let off = OFF_GEOMETRY + 8 * i;
            header[off..off + 8].copy_from_slice(&g.to_le_bytes());
        }
        file.write_all(&header)?;
        file.set_len(total_len as u64)?;
        file.sync_all()?;
        let seg = Self::map(file, path.clone(), total_len, true)?;
        seg.header_atomic(OFF_ATTACHED)
            .fetch_add(1, Ordering::AcqRel);
        Ok(seg)
    }

    /// Open and map an existing segment, validating magic, version, and
    /// length. The typed errors here are the peer's first line of defence
    /// against attaching to garbage.
    pub fn open(path: &Path) -> Result<ShmSegment, ShmError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut head = [0u8; SEGMENT_HEADER];
        let file_len = file.metadata()?.len();
        if file_len < SEGMENT_HEADER as u64 {
            // Too short to even hold a header: report whatever leading
            // bytes exist as the (bad) magic.
            file.read_exact(&mut head[..file_len as usize])?;
            let mut first = [0u8; 8];
            first.copy_from_slice(&head[..8]);
            return Err(ShmError::BadMagic {
                found: u64::from_le_bytes(first),
            });
        }
        file.read_exact(&mut head)?;
        file.seek(SeekFrom::Start(0))?;
        let word = |off: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&head[off..off + 8]);
            u64::from_le_bytes(b)
        };
        if word(OFF_MAGIC) != MAGIC {
            return Err(ShmError::BadMagic {
                found: word(OFF_MAGIC),
            });
        }
        if word(OFF_VERSION) != SEGMENT_VERSION {
            return Err(ShmError::VersionMismatch {
                found: word(OFF_VERSION),
                expected: SEGMENT_VERSION,
            });
        }
        let total_len = word(OFF_TOTAL_LEN);
        if total_len != file_len {
            return Err(ShmError::LengthMismatch {
                header: total_len,
                file: file_len,
            });
        }
        let seg = Self::map(file, path.to_path_buf(), total_len as usize, false)?;
        seg.header_atomic(OFF_ATTACHED)
            .fetch_add(1, Ordering::AcqRel);
        Ok(seg)
    }

    fn map(
        file: File,
        path: PathBuf,
        total_len: usize,
        owner: bool,
    ) -> Result<ShmSegment, ShmError> {
        use std::os::fd::AsRawFd;
        // SAFETY: the fd is open and the file is `total_len` bytes (set_len
        // above / length-validated in `open`). The mapping outlives the fd
        // (POSIX), so dropping `file` on return is fine.
        let ptr = unsafe { sysmap::map_shared(file.as_raw_fd(), total_len)? };
        Ok(ShmSegment {
            ptr,
            total_len,
            path,
            owner,
        })
    }

    /// The backing file's path — hand this to peer processes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Payload bytes (total minus header).
    pub fn payload_len(&self) -> usize {
        self.total_len - SEGMENT_HEADER
    }

    /// Base of the payload, 8-byte aligned. Valid for
    /// [`payload_len`](Self::payload_len) bytes while `self` lives.
    pub fn payload_ptr(&self) -> *mut u8 {
        // SAFETY: SEGMENT_HEADER < total_len is not guaranteed (zero
        // payload is legal) but one-past-the-end is still in-bounds.
        unsafe { self.ptr.add(SEGMENT_HEADER) }
    }

    /// The `i`-th creator-defined geometry word.
    pub fn geometry(&self, i: usize) -> u64 {
        assert!(i < GEOMETRY_WORDS);
        self.header_atomic(OFF_GEOMETRY + 8 * i)
            .load(Ordering::Acquire)
    }

    /// How many processes have ever attached (including the creator).
    pub fn attach_count(&self) -> u64 {
        self.header_atomic(OFF_ATTACHED).load(Ordering::Acquire)
    }

    /// Mark the segment faulted with a nonzero `code` (idempotent; the
    /// first code wins).
    pub fn poison(&self, code: u64) {
        assert_ne!(code, 0, "poison code 0 means healthy");
        let _ = self.header_atomic(OFF_POISON).compare_exchange(
            0,
            code,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// The fault code, if a peer poisoned the segment.
    pub fn poisoned(&self) -> Option<u64> {
        match self.header_atomic(OFF_POISON).load(Ordering::Acquire) {
            0 => None,
            code => Some(code),
        }
    }

    /// Convenience: `Err(Poisoned)` if faulted, else `Ok(())`.
    pub fn check_healthy(&self) -> Result<(), ShmError> {
        match self.poisoned() {
            Some(code) => Err(ShmError::Poisoned { code }),
            None => Ok(()),
        }
    }

    fn header_atomic(&self, byte_off: usize) -> &AtomicU64 {
        debug_assert!(byte_off.is_multiple_of(8) && byte_off + 8 <= SEGMENT_HEADER);
        // SAFETY: in-bounds, 8-aligned (page-aligned base), and the word
        // is only ever accessed atomically after publication.
        unsafe { AtomicU64::from_ptr(self.ptr.add(byte_off) as *mut u64) }
    }
}

impl Drop for ShmSegment {
    fn drop(&mut self) {
        // SAFETY: (ptr, total_len) is exactly our live mapping and all
        // references into it are dead (`&self` methods borrow `self`).
        let _ = unsafe { sysmap::unmap(self.ptr, self.total_len) };
        if self.owner {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// [`crate::seqlock::SeqWords`] over `1 + n_words` consecutive `u64`s of a
/// segment's payload: word 0 is the version, words `1..=n_words` the data.
///
/// Constructed per-process over the same offsets, this gives each side a
/// [`crate::seqlock::SeqLock`] on physically shared words — the heap twin
/// of the same protocol is what the model suite verifies.
pub struct SegSeqWords<'a> {
    base: *mut u64,
    n_words: usize,
    _seg: std::marker::PhantomData<&'a ShmSegment>,
}

// SAFETY: all access is through atomics.
unsafe impl Send for SegSeqWords<'_> {}
unsafe impl Sync for SegSeqWords<'_> {}

impl<'a> SegSeqWords<'a> {
    /// View `1 + n_words` u64s starting `byte_off` into `seg`'s payload.
    ///
    /// # Panics
    ///
    /// If the range is unaligned or out of bounds.
    pub fn new(seg: &'a ShmSegment, byte_off: usize, n_words: usize) -> Self {
        assert!(
            byte_off.is_multiple_of(8),
            "seqlock words must be 8-byte aligned"
        );
        let bytes = 8 * (1 + n_words);
        assert!(
            byte_off + bytes <= seg.payload_len(),
            "seqlock words out of segment bounds"
        );
        SegSeqWords {
            // SAFETY: in-bounds per the assert above.
            base: unsafe { seg.payload_ptr().add(byte_off) } as *mut u64,
            n_words,
            _seg: std::marker::PhantomData,
        }
    }
}

impl crate::seqlock::SeqWords for SegSeqWords<'_> {
    fn seq(&self) -> &AtomicU64 {
        // SAFETY: in-bounds and aligned (checked in `new`); accessed only
        // atomically.
        unsafe { AtomicU64::from_ptr(self.base) }
    }

    fn n_words(&self) -> usize {
        self.n_words
    }

    fn word(&self, i: usize) -> &AtomicU64 {
        assert!(i < self.n_words);
        // SAFETY: as for `seq`.
        unsafe { AtomicU64::from_ptr(self.base.add(1 + i)) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqlock::SeqLock;

    #[test]
    fn create_map_reopen_round_trips() {
        let seg = ShmSegment::create(4096, &[3, 4, 64]).unwrap();
        assert_eq!(seg.payload_len(), 4096);
        assert_eq!(
            (seg.geometry(0), seg.geometry(1), seg.geometry(2)),
            (3, 4, 64)
        );
        assert_eq!(seg.attach_count(), 1);
        // Write through one mapping, read through a second (same process,
        // distinct mapping — the pages are shared either way).
        unsafe { seg.payload_ptr().write(0xAB) };
        let peer = ShmSegment::open(seg.path()).unwrap();
        assert_eq!(peer.payload_len(), 4096);
        assert_eq!(peer.geometry(1), 4);
        assert_eq!(unsafe { peer.payload_ptr().read() }, 0xAB);
        assert_eq!(seg.attach_count(), 2);
    }

    #[test]
    fn zero_payload_segment_is_legal() {
        let seg = ShmSegment::create(0, &[]).unwrap();
        assert_eq!(seg.payload_len(), 0);
        let peer = ShmSegment::open(seg.path()).unwrap();
        assert_eq!(peer.payload_len(), 0);
    }

    #[test]
    fn owner_drop_unlinks_the_file() {
        let seg = ShmSegment::create(64, &[]).unwrap();
        let path = seg.path().to_path_buf();
        let peer = ShmSegment::open(&path).unwrap();
        drop(seg);
        assert!(!path.exists(), "creator must unlink on drop");
        // The peer's mapping survives the unlink.
        assert_eq!(peer.poisoned(), None);
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let seg = ShmSegment::create(64, &[]).unwrap();
        // Corrupt the version word through the file.
        let mut f = OpenOptions::new().write(true).open(seg.path()).unwrap();
        f.seek(SeekFrom::Start(OFF_VERSION as u64)).unwrap();
        f.write_all(&99u64.to_le_bytes()).unwrap();
        match ShmSegment::open(seg.path()) {
            Err(ShmError::VersionMismatch {
                found: 99,
                expected,
            }) => {
                assert_eq!(expected, SEGMENT_VERSION)
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn non_segment_file_is_a_typed_error() {
        let dir = segment_dir();
        let path = dir.join(format!("bgp-proc-test-garbage-{}", std::process::id()));
        std::fs::write(&path, b"not a segment at all........").unwrap();
        match ShmSegment::open(&path) {
            Err(ShmError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn poison_is_sticky_and_first_writer_wins() {
        let seg = ShmSegment::create(0, &[]).unwrap();
        assert!(seg.check_healthy().is_ok());
        seg.poison(7);
        seg.poison(9);
        assert_eq!(seg.poisoned(), Some(7));
        match seg.check_healthy() {
            Err(ShmError::Poisoned { code: 7 }) => {}
            other => panic!("expected Poisoned(7), got {other:?}"),
        }
    }

    #[test]
    fn seg_seqlock_publishes_across_mappings() {
        let seg = ShmSegment::create(256, &[]).unwrap();
        let peer = ShmSegment::open(seg.path()).unwrap();
        let writer = SeqLock::over(SegSeqWords::new(&seg, 64, 2));
        let reader = SeqLock::over(SegSeqWords::new(&peer, 64, 2));
        writer.publish(&[11, 22]);
        let mut out = [0u64; 2];
        assert_eq!(reader.read_into(&mut out), 2);
        assert_eq!(out, [11, 22]);
    }
}
