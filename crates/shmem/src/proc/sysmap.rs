//! Raw `mmap`/`munmap`, as direct syscalls.
//!
//! The crate is `std`-only by policy (no libc, no external crates), but
//! `std` exposes no shared file mapping. The two syscalls the segment
//! needs are tiny and stable ABI, so they are issued directly with inline
//! asm — the same instruction sequences libc itself emits. Linux-only, on
//! the two architectures this repo targets.

use std::io;

const PROT_READ: usize = 1;
const PROT_WRITE: usize = 2;
const MAP_SHARED: usize = 1;

#[cfg(target_arch = "x86_64")]
unsafe fn sys_mmap(len: usize, prot: usize, flags: usize, fd: i32) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") 9isize => ret, // __NR_mmap
        in("rdi") 0usize,               // addr: kernel-chosen
        in("rsi") len,
        in("rdx") prot,
        in("r10") flags,
        in("r8") fd as isize,
        in("r9") 0usize,                // offset
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    ret
}

#[cfg(target_arch = "x86_64")]
unsafe fn sys_munmap(addr: usize, len: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") 11isize => ret, // __NR_munmap
        in("rdi") addr,
        in("rsi") len,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn sys_mmap(len: usize, prot: usize, flags: usize, fd: i32) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc #0",
        inlateout("x0") 0usize => ret, // addr: kernel-chosen
        in("x1") len,
        in("x2") prot,
        in("x3") flags,
        in("x4") fd as isize,
        in("x5") 0usize,               // offset
        in("x8") 222usize,             // __NR_mmap
        options(nostack)
    );
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn sys_munmap(addr: usize, len: usize) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc #0",
        inlateout("x0") addr => ret,
        in("x1") len,
        in("x8") 215usize, // __NR_munmap
        options(nostack)
    );
    ret
}

#[cfg(target_arch = "x86_64")]
pub(crate) fn sys_getppid() -> u32 {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 110isize => ret, // __NR_getppid
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    ret as u32
}

#[cfg(target_arch = "aarch64")]
pub(crate) fn sys_getppid() -> u32 {
    let ret: isize;
    unsafe {
        core::arch::asm!(
            "svc #0",
            lateout("x0") ret,
            in("x8") 173usize, // __NR_getppid
            options(nostack)
        );
    }
    ret as u32
}

/// Map `len` bytes of `fd` shared read-write at a kernel-chosen address.
///
/// # Safety
///
/// `fd` must be a valid file descriptor whose file is at least `len` bytes
/// long (accessing a mapping past EOF raises `SIGBUS`).
pub(crate) unsafe fn map_shared(fd: i32, len: usize) -> io::Result<*mut u8> {
    let ret = sys_mmap(len, PROT_READ | PROT_WRITE, MAP_SHARED, fd);
    if (-4095..0).contains(&ret) {
        return Err(io::Error::from_raw_os_error(-ret as i32));
    }
    Ok(ret as *mut u8)
}

/// Unmap a mapping previously returned by [`map_shared`].
///
/// # Safety
///
/// `(ptr, len)` must be exactly a live mapping from [`map_shared`], and no
/// reference into it may outlive this call.
pub(crate) unsafe fn unmap(ptr: *mut u8, len: usize) -> io::Result<()> {
    let ret = sys_munmap(ptr as usize, len);
    if (-4095..0).contains(&ret) {
        return Err(io::Error::from_raw_os_error(-ret as i32));
    }
    Ok(())
}
