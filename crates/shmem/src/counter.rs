//! Software message counters (paper §IV-C).
//!
//! The DMA engine tracks progress with hardware byte counters; the paper
//! mirrors that design in software so intra-node consumers can chase a
//! network reception *as it happens*. A [`MessageCounter`] is a single
//! monotonically increasing byte count: the producer (the rank receiving
//! from the network) publishes after each chunk lands; consumers poll and
//! copy the newly valid prefix. The [`CompletionCounter`] is the atomic
//! "all n-1 peers are done" count the master needs before it may reuse or
//! overwrite its buffer.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::pad::CachePadded;

use crate::spin;

/// A monotone byte counter published by one producer, polled by any number
/// of consumers.
///
/// The counter value is the number of bytes of the stream that are valid in
/// the producer's buffer. `publish` uses `Release` so a consumer that
/// `Acquire`-reads the new value also observes the buffer bytes it covers.
///
/// The counter is reusable across operations via [`MessageCounter::reset`],
/// which only the producer may call, and only once all consumers of the
/// previous operation are known to be done (use a [`CompletionCounter`]).
#[derive(Debug)]
pub struct MessageCounter {
    bytes: CachePadded<AtomicU64>,
    /// Lifetime consumer polls (reads inside [`wait_for`](Self::wait_for)
    /// spins). On its own line, and updated once per `wait_for` call rather
    /// than per spin, so accounting never perturbs the hot path.
    polls: CachePadded<AtomicU64>,
}

impl Default for MessageCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl MessageCounter {
    /// A counter at zero.
    pub fn new() -> Self {
        MessageCounter {
            bytes: CachePadded::new(AtomicU64::new(0)),
            polls: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Producer: `delta` more bytes of the stream are now valid.
    ///
    /// Returns the new total.
    #[inline]
    pub fn publish(&self, delta: u64) -> u64 {
        self.bytes.fetch_add(delta, Ordering::Release) + delta
    }

    /// Consumer: the currently valid byte count (acquire: pairs with
    /// [`publish`](Self::publish), making the covered bytes visible).
    #[inline]
    pub fn read(&self) -> u64 {
        self.bytes.load(Ordering::Acquire)
    }

    /// Consumer: spin until at least `target` bytes are valid; returns the
    /// observed count (which may exceed `target`).
    pub fn wait_for(&self, target: u64) -> u64 {
        let mut local_polls = 0u64;
        let got = loop {
            local_polls += 1;
            let v = self.read();
            if v >= target {
                break v;
            }
            spin();
        };
        self.polls.fetch_add(local_polls, Ordering::Relaxed);
        got
    }

    /// Lifetime number of consumer polls spent in
    /// [`wait_for`](Self::wait_for) (each loop iteration is one poll).
    /// Relaxed snapshot; survives [`reset`](Self::reset).
    pub fn poll_count(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// Producer only: rearm for the next operation. Must happen-after all
    /// consumers finished with the previous one.
    pub fn reset(&self) {
        self.bytes.store(0, Ordering::Release);
    }
}

/// The atomic completion counter of §V-A: initialised to zero by the master;
/// every peer increments once when it has finished copying; when the count
/// reaches `n-1` the master may reuse its buffer.
///
/// Reusable across operations through an internal epoch: [`reset`] begins a
/// new operation. (On BG/P this is a plain shared word; the epoch only
/// protects against the programming error of arriving into a completed,
/// un-reset counter, which the paper's flow structure makes impossible but a
/// library should check.)
#[derive(Debug)]
pub struct CompletionCounter {
    arrived: CachePadded<AtomicU64>,
    expected: u64,
}

impl CompletionCounter {
    /// A counter expecting `expected` arrivals (use `n-1` for n ranks).
    pub fn new(expected: u64) -> Self {
        CompletionCounter {
            arrived: CachePadded::new(AtomicU64::new(0)),
            expected,
        }
    }

    /// The number of arrivals this counter waits for.
    #[inline]
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// A peer announces it is done. Returns `true` if this was the final
    /// arrival. Release ordering: the master's acquire in
    /// [`is_complete`](Self::is_complete)/[`wait`](Self::wait) then
    /// happens-after every peer's copies.
    #[inline]
    pub fn arrive(&self) -> bool {
        let prev = self.arrived.fetch_add(1, Ordering::Release);
        debug_assert!(
            prev < self.expected,
            "completion counter overflow: arrival {} of {}",
            prev + 1,
            self.expected
        );
        prev + 1 == self.expected
    }

    /// Master: have all peers arrived?
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.arrived.load(Ordering::Acquire) >= self.expected
    }

    /// Master: spin until all peers arrived.
    pub fn wait(&self) {
        while !self.is_complete() {
            spin();
        }
    }

    /// Master only, after completion: rearm for the next operation.
    pub fn reset(&self) {
        self.arrived.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn publish_accumulates() {
        let c = MessageCounter::new();
        assert_eq!(c.read(), 0);
        assert_eq!(c.publish(100), 100);
        assert_eq!(c.publish(28), 128);
        assert_eq!(c.read(), 128);
        c.reset();
        assert_eq!(c.read(), 0);
    }

    #[test]
    fn wait_for_returns_at_or_above_target() {
        let c = MessageCounter::new();
        c.publish(512);
        assert_eq!(c.wait_for(512), 512);
        assert_eq!(c.wait_for(100), 512);
    }

    #[test]
    fn poll_count_accumulates_per_wait() {
        let c = MessageCounter::new();
        c.publish(512);
        assert_eq!(c.poll_count(), 0);
        c.wait_for(100); // satisfied on the first poll
        assert_eq!(c.poll_count(), 1);
        c.wait_for(512);
        assert_eq!(c.poll_count(), 2);
        c.reset();
        assert_eq!(c.poll_count(), 2, "polls survive reset");
    }

    #[test]
    fn counter_chase_across_threads() {
        // A producer publishes a buffer chunk by chunk; a consumer chases
        // the counter and must observe every published byte correctly.
        // This is the §V-A broadcast data path in miniature.
        const CHUNK: usize = 1024;
        const CHUNKS: usize = 64;
        let buf: Arc<Vec<std::sync::atomic::AtomicU8>> = Arc::new(
            (0..CHUNK * CHUNKS)
                .map(|_| std::sync::atomic::AtomicU8::new(0))
                .collect(),
        );
        let ctr = Arc::new(MessageCounter::new());

        let producer = {
            let buf = buf.clone();
            let ctr = ctr.clone();
            thread::spawn(move || {
                for k in 0..CHUNKS {
                    for i in 0..CHUNK {
                        buf[k * CHUNK + i].store((k % 251) as u8, Ordering::Relaxed);
                    }
                    ctr.publish(CHUNK as u64);
                }
            })
        };
        let consumer = {
            let buf = buf.clone();
            let ctr = ctr.clone();
            thread::spawn(move || {
                let mut seen = 0u64;
                while seen < (CHUNK * CHUNKS) as u64 {
                    let avail = ctr.wait_for(seen + 1);
                    for i in seen..avail {
                        let k = (i as usize) / CHUNK;
                        let v = buf[i as usize].load(Ordering::Relaxed);
                        assert_eq!(v, (k % 251) as u8, "byte {i} not yet visible");
                    }
                    seen = avail;
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
    }

    #[test]
    fn completion_counts_to_expected() {
        let c = CompletionCounter::new(3);
        assert!(!c.is_complete());
        assert!(!c.arrive());
        assert!(!c.arrive());
        assert!(c.arrive());
        assert!(c.is_complete());
        c.reset();
        assert!(!c.is_complete());
    }

    #[test]
    fn completion_zero_expected_is_always_complete() {
        let c = CompletionCounter::new(0);
        assert!(c.is_complete());
        c.wait();
    }

    #[test]
    fn completion_across_threads() {
        let c = Arc::new(CompletionCounter::new(7));
        let mut handles = Vec::new();
        for _ in 0..7 {
            let c = c.clone();
            handles.push(thread::spawn(move || {
                c.arrive();
            }));
        }
        c.wait();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.is_complete());
    }

    #[test]
    fn exactly_one_final_arrival() {
        // Under concurrency, exactly one arriver sees `true`.
        for _ in 0..50 {
            let c = Arc::new(CompletionCounter::new(8));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let c = c.clone();
                handles.push(thread::spawn(move || u32::from(c.arrive())));
            }
            let finals: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(finals, 1);
        }
    }
}
