//! Software message counters (paper §IV-C).
//!
//! The DMA engine tracks progress with hardware byte counters; the paper
//! mirrors that design in software so intra-node consumers can chase a
//! network reception *as it happens*. A [`MessageCounter`] is a single
//! monotonically increasing byte count: the producer (the rank receiving
//! from the network) publishes after each chunk lands; consumers poll and
//! copy the newly valid prefix. The [`CompletionCounter`] is the atomic
//! "all n-1 peers are done" count the master needs before it may reuse or
//! overwrite its buffer.

use crate::pad::CachePadded;
use crate::sync::atomic::{AtomicU64, Ordering};

use crate::model_support;
use crate::spin;

/// A monotone byte counter published by one producer, polled by any number
/// of consumers.
///
/// The counter value is the number of bytes of the stream that are valid in
/// the producer's buffer. `publish` uses `Release` so a consumer that
/// `Acquire`-reads the new value also observes the buffer bytes it covers.
///
/// # Reset protocol
///
/// The counter is reusable across operations via [`reset`](Self::reset),
/// but `reset` itself carries **no** synchronization for consumers: a
/// consumer still inside [`wait_for`](Self::wait_for) when the count drops
/// to zero would wait for a target the *previous* operation already
/// satisfied, and a consumer that read a pre-reset value could copy bytes
/// the producer is already overwriting. The documented protocol is
/// therefore:
///
/// 1. every consumer finishes its copies, then announces via a
///    [`CompletionCounter`] ([`CompletionCounter::arrive`], release);
/// 2. the producer waits for completion ([`CompletionCounter::wait`],
///    acquire) — this is the happens-before edge that orders every
///    consumer's last read before the reset;
/// 3. only then does the producer call `reset` and start the next
///    operation.
///
/// In debug builds, `reset` additionally checks that no consumer is
/// currently inside `wait_for` and panics if one is — the misuse the
/// protocol exists to prevent. The model tests in `tests/model.rs` check
/// the full protocol (and that the guard fires on the broken variant)
/// schedule-exhaustively.
///
/// # Cumulative reuse (no reset)
///
/// The reset protocol costs a completion round per operation. A persistent
/// runtime that performs back-to-back operations can skip it entirely by
/// treating the counter as **cumulative**: nobody ever resets, each
/// participant records the counter value at the start of the operation (its
/// *base*) and waits for `base + k` instead of `k`. The base read is safe
/// whenever it is separated from the producer's next publish by any
/// happens-before edge — in practice a barrier at operation start: every
/// participant reads the base (stable, because the previous operation ended
/// with a barrier after the last publish), then the barrier, then the
/// producer publishes. [`wait_past`](Self::wait_past) packages the
/// base-relative wait. The multi-node cluster runtime in `bgp-smp` uses
/// this scheme exclusively.
#[derive(Debug)]
pub struct MessageCounter {
    bytes: CachePadded<AtomicU64>,
    /// Lifetime consumer polls (reads inside [`wait_for`](Self::wait_for)
    /// spins). On its own line, and updated once per `wait_for` call rather
    /// than per spin, so accounting never perturbs the hot path.
    polls: CachePadded<AtomicU64>,
    /// Consumers currently inside [`wait_for`](Self::wait_for); feeds the
    /// debug-mode reset guard.
    waiters: CachePadded<AtomicU64>,
    /// Operations completed, i.e. times [`reset`](Self::reset) ran.
    resets: CachePadded<AtomicU64>,
}

impl Default for MessageCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl MessageCounter {
    /// A counter at zero.
    pub fn new() -> Self {
        MessageCounter {
            bytes: CachePadded::new(AtomicU64::new(0)),
            polls: CachePadded::new(AtomicU64::new(0)),
            waiters: CachePadded::new(AtomicU64::new(0)),
            resets: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Producer: `delta` more bytes of the stream are now valid.
    ///
    /// Returns the new total.
    #[inline]
    pub fn publish(&self, delta: u64) -> u64 {
        // Seeded bug: a relaxed publication no longer makes the buffer
        // bytes visible to the consumer that observes the new count.
        let order = model_support::relaxed_if("counter_publish_relaxed", Ordering::Release);
        self.bytes.fetch_add(delta, order) + delta
    }

    /// Consumer: the currently valid byte count (acquire: pairs with
    /// [`publish`](Self::publish), making the covered bytes visible).
    #[inline]
    pub fn read(&self) -> u64 {
        self.bytes.load(Ordering::Acquire)
    }

    /// Consumer: spin until at least `target` bytes are valid; returns the
    /// observed count (which may exceed `target`).
    pub fn wait_for(&self, target: u64) -> u64 {
        self.waiters.fetch_add(1, Ordering::AcqRel);
        let mut local_polls = 0u64;
        let got = loop {
            local_polls += 1;
            let v = self.read();
            if v >= target {
                break v;
            }
            spin();
        };
        self.polls.fetch_add(local_polls, Ordering::Relaxed);
        self.waiters.fetch_sub(1, Ordering::AcqRel);
        got
    }

    /// Consumer, cumulative-reuse scheme: spin until at least `delta` bytes
    /// past `base` are valid; returns the observed count *relative to
    /// `base`* (≥ `delta`). `base` is the value [`read`](Self::read)
    /// returned at operation start — see *Cumulative reuse* in the type
    /// docs for when that read is safe.
    #[inline]
    pub fn wait_past(&self, base: u64, delta: u64) -> u64 {
        self.wait_for(base + delta) - base
    }

    /// Lifetime number of consumer polls spent in
    /// [`wait_for`](Self::wait_for) (each loop iteration is one poll).
    /// Relaxed snapshot; survives [`reset`](Self::reset).
    pub fn poll_count(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// Consumers currently inside [`wait_for`](Self::wait_for). Diagnostic
    /// snapshot; exact only when externally quiesced.
    pub fn active_waiters(&self) -> u64 {
        self.waiters.load(Ordering::Acquire)
    }

    /// Times this counter has been [`reset`](Self::reset) — i.e. completed
    /// operations. Relaxed snapshot.
    pub fn reset_count(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }

    /// Producer only: rearm for the next operation.
    ///
    /// Must happen-after all consumers finished with the previous operation
    /// — see the reset protocol in the type docs. Debug builds panic if a
    /// consumer is still inside [`wait_for`](Self::wait_for).
    pub fn reset(&self) {
        debug_assert_eq!(
            self.waiters.load(Ordering::Acquire),
            0,
            "MessageCounter::reset while a consumer is inside wait_for: \
             the producer must wait for all consumers (e.g. via a \
             CompletionCounter) before rearming"
        );
        self.resets.fetch_add(1, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Release);
    }
}

/// The atomic completion counter of §V-A: initialised to zero by the master;
/// every peer increments once when it has finished copying; when the count
/// reaches `n-1` the master may reuse its buffer.
///
/// Reusable across operations through an internal epoch: arrivals and the
/// epoch number are packed into one atomic word (arrivals in the low 32
/// bits, epoch in the high 32), and [`reset`](Self::reset) begins a new
/// epoch with the arrival count back at zero. Arriving into an
/// already-complete, un-reset counter is a protocol violation — the arrival
/// would be credited to a *finished* operation and silently lost to the
/// next one — so [`arrive`](Self::arrive) checks for it in **all** builds
/// and panics, naming the epoch. (On BG/P this is a plain shared word; the
/// paper's flow structure makes the misuse impossible, but a library should
/// check.)
#[derive(Debug)]
pub struct CompletionCounter {
    /// Low 32 bits: arrivals this epoch. High 32 bits: epoch number.
    state: CachePadded<AtomicU64>,
    expected: u64,
}

/// Mask selecting the arrival count from the packed state word.
const ARRIVALS_MASK: u64 = u32::MAX as u64;
/// Shift selecting the epoch from the packed state word.
const EPOCH_SHIFT: u32 = 32;

impl CompletionCounter {
    /// A counter expecting `expected` arrivals (use `n-1` for n ranks).
    pub fn new(expected: u64) -> Self {
        assert!(
            expected < ARRIVALS_MASK,
            "completion counter supports at most {} arrivals per epoch",
            ARRIVALS_MASK - 1
        );
        CompletionCounter {
            state: CachePadded::new(AtomicU64::new(0)),
            expected,
        }
    }

    /// The number of arrivals this counter waits for.
    #[inline]
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// The current epoch (0 before the first [`reset`](Self::reset)).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.state.load(Ordering::Relaxed) >> EPOCH_SHIFT
    }

    /// A peer announces it is done. Returns `true` if this was the final
    /// arrival. Release ordering: the master's acquire in
    /// [`is_complete`](Self::is_complete)/[`wait`](Self::wait) then
    /// happens-after every peer's copies.
    ///
    /// # Panics
    ///
    /// In all builds, if the current epoch was already complete: the caller
    /// skipped the [`reset`](Self::reset) that separates operations, and
    /// its arrival would otherwise leak into the next epoch's count.
    #[inline]
    pub fn arrive(&self) -> bool {
        // Seeded bug: a relaxed arrival breaks the peers' copies → master's
        // buffer-reuse happens-before chain.
        let order = model_support::relaxed_if("completion_arrive_relaxed", Ordering::Release);
        let prev = self.state.fetch_add(1, order);
        let arrivals = prev & ARRIVALS_MASK;
        assert!(
            arrivals < self.expected,
            "completion counter overflow in epoch {}: arrival {} of {} — \
             reset() must separate operations",
            prev >> EPOCH_SHIFT,
            arrivals + 1,
            self.expected
        );
        arrivals + 1 == self.expected
    }

    /// Master: have all peers arrived?
    #[inline]
    pub fn is_complete(&self) -> bool {
        (self.state.load(Ordering::Acquire) & ARRIVALS_MASK) >= self.expected
    }

    /// Master: spin until all peers arrived.
    pub fn wait(&self) {
        while !self.is_complete() {
            spin();
        }
    }

    /// Master only, after completion: rearm for the next operation by
    /// starting a fresh epoch with zero arrivals.
    pub fn reset(&self) {
        // Not an RMW: per the contract no peer may be arriving concurrently
        // (the master only resets after completion), so a computed store is
        // race-free — and keeps reset() a single release publication, like
        // the plain shared word on BG/P.
        let epoch = self.state.load(Ordering::Relaxed) >> EPOCH_SHIFT;
        self.state
            .store((epoch + 1) << EPOCH_SHIFT, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn publish_accumulates() {
        let c = MessageCounter::new();
        assert_eq!(c.read(), 0);
        assert_eq!(c.publish(100), 100);
        assert_eq!(c.publish(28), 128);
        assert_eq!(c.read(), 128);
        c.reset();
        assert_eq!(c.read(), 0);
        assert_eq!(c.reset_count(), 1);
    }

    #[test]
    fn wait_past_is_base_relative() {
        // Two "operations" with no reset in between: the second op's
        // consumers wait relative to the base they read at its start.
        let c = MessageCounter::new();
        c.publish(300); // op 1
        assert_eq!(c.wait_past(0, 300), 300);
        let base = c.read();
        assert_eq!(base, 300);
        c.publish(128); // op 2, chunk 1
        c.publish(72); // op 2, chunk 2
        assert_eq!(c.wait_past(base, 128), 200);
        assert_eq!(c.wait_past(base, 200), 200);
        assert_eq!(c.reset_count(), 0, "cumulative reuse never resets");
    }

    #[test]
    fn wait_for_returns_at_or_above_target() {
        let c = MessageCounter::new();
        c.publish(512);
        assert_eq!(c.wait_for(512), 512);
        assert_eq!(c.wait_for(100), 512);
        assert_eq!(c.active_waiters(), 0);
    }

    #[test]
    fn poll_count_accumulates_per_wait() {
        let c = MessageCounter::new();
        c.publish(512);
        assert_eq!(c.poll_count(), 0);
        c.wait_for(100); // satisfied on the first poll
        assert_eq!(c.poll_count(), 1);
        c.wait_for(512);
        assert_eq!(c.poll_count(), 2);
        c.reset();
        assert_eq!(c.poll_count(), 2, "polls survive reset");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn reset_with_active_waiter_is_caught() {
        // The misuse the reset protocol forbids: rearming while a consumer
        // is still blocked in wait_for. The debug guard must fire. (The
        // schedule-exhaustive version of this check is in tests/model.rs.)
        let c = Arc::new(MessageCounter::new());
        let waiter = {
            let c = c.clone();
            thread::spawn(move || c.wait_for(1))
        };
        while c.active_waiters() == 0 {
            std::thread::yield_now();
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.reset()));
        assert!(outcome.is_err(), "reset with an active waiter must panic");
        // Release the waiter so the thread can be joined.
        c.publish(1);
        assert_eq!(waiter.join().unwrap(), 1);
    }

    #[test]
    fn counter_chase_across_threads() {
        // A producer publishes a buffer chunk by chunk; a consumer chases
        // the counter and must observe every published byte correctly.
        // This is the §V-A broadcast data path in miniature.
        const CHUNK: usize = 1024;
        let chunks = crate::testing::stress_iters(64);
        let buf: Arc<Vec<std::sync::atomic::AtomicU8>> = Arc::new(
            (0..CHUNK * chunks)
                .map(|_| std::sync::atomic::AtomicU8::new(0))
                .collect(),
        );
        let ctr = Arc::new(MessageCounter::new());

        let producer = {
            let buf = buf.clone();
            let ctr = ctr.clone();
            thread::spawn(move || {
                for k in 0..chunks {
                    for i in 0..CHUNK {
                        buf[k * CHUNK + i].store((k % 251) as u8, Ordering::Relaxed);
                    }
                    ctr.publish(CHUNK as u64);
                }
            })
        };
        let consumer = {
            let buf = buf.clone();
            let ctr = ctr.clone();
            thread::spawn(move || {
                let mut seen = 0u64;
                while seen < (CHUNK * chunks) as u64 {
                    let avail = ctr.wait_for(seen + 1);
                    for i in seen..avail {
                        let k = (i as usize) / CHUNK;
                        let v = buf[i as usize].load(Ordering::Relaxed);
                        assert_eq!(v, (k % 251) as u8, "byte {i} not yet visible");
                    }
                    seen = avail;
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
    }

    #[test]
    fn completion_counts_to_expected() {
        let c = CompletionCounter::new(3);
        assert!(!c.is_complete());
        assert!(!c.arrive());
        assert!(!c.arrive());
        assert!(c.arrive());
        assert!(c.is_complete());
        c.reset();
        assert!(!c.is_complete());
    }

    #[test]
    fn completion_zero_expected_is_always_complete() {
        let c = CompletionCounter::new(0);
        assert!(c.is_complete());
        c.wait();
    }

    #[test]
    fn epoch_advances_across_resets() {
        let c = CompletionCounter::new(2);
        assert_eq!(c.epoch(), 0);
        for round in 1..=3u64 {
            assert!(!c.arrive());
            assert!(c.arrive());
            assert!(c.is_complete());
            c.reset();
            assert_eq!(c.epoch(), round);
            assert!(!c.is_complete(), "reset must clear the arrival count");
        }
    }

    #[test]
    #[should_panic(expected = "completion counter overflow")]
    fn arrival_into_complete_epoch_is_caught() {
        // Regression: this used to be a debug_assert!, letting release
        // builds silently credit the arrival to a finished operation. The
        // guard is now unconditional.
        let c = CompletionCounter::new(1);
        assert!(c.arrive());
        let _ = c.arrive(); // must panic: epoch 0 was already complete
    }

    #[test]
    fn completion_across_threads() {
        let c = Arc::new(CompletionCounter::new(7));
        let mut handles = Vec::new();
        for _ in 0..7 {
            let c = c.clone();
            handles.push(thread::spawn(move || {
                c.arrive();
            }));
        }
        c.wait();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.is_complete());
    }

    #[test]
    fn exactly_one_final_arrival() {
        // Under concurrency, exactly one arriver sees `true`.
        for _ in 0..50 {
            let c = Arc::new(CompletionCounter::new(8));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let c = c.clone();
                handles.push(thread::spawn(move || u32::from(c.arrive())));
            }
            let finals: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(finals, 1);
        }
    }
}
