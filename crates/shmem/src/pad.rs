//! Cache-line padding for contended atomics.
//!
//! A minimal stand-in for `crossbeam_utils::CachePadded`: aligning each
//! contended word to its own cache line prevents false sharing between the
//! producer- and consumer-side cursors of the FIFOs and counters. 128 bytes
//! covers the spatial-prefetcher pair on x86_64 and the 128-byte lines of
//! modern aarch64 parts; on anything smaller it merely over-aligns.

use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes so neighbouring values never share a
/// cache line.
#[derive(Default, Debug)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn alignment_and_size() {
        assert!(std::mem::align_of::<CachePadded<AtomicU64>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 128);
        // Adjacent array elements land on distinct lines.
        let pair = [
            CachePadded::new(AtomicU64::new(0)),
            CachePadded::new(AtomicU64::new(0)),
        ];
        let a = &*pair[0] as *const AtomicU64 as usize;
        let b = &*pair[1] as *const AtomicU64 as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_and_into_inner() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
        let q: CachePadded<u8> = 7u8.into();
        assert_eq!(*q, 7);
        p = CachePadded::default();
        let _ = p;
    }

    #[test]
    fn padded_atomics_work() {
        let c = CachePadded::new(AtomicU64::new(5));
        c.fetch_add(3, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 8);
    }
}
