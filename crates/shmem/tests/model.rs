//! Model-checked verification of the shmem primitives.
//!
//! Compiled only with `--features model`, which routes the primitives'
//! atomics, payload cells, and spin loops through the `bgp-check`
//! deterministic scheduler. Run with:
//!
//! ```text
//! cargo test -p bgp-shmem --features model --test model
//! ```
//!
//! Three kinds of tests:
//!
//! * **Protocol oracles** — small producer/consumer scenarios explored
//!   schedule-exhaustively (bounded DFS) or over many seeded random
//!   schedules, with assertions for loss, duplication, reordering,
//!   last-reader retirement, and buffer-visibility-after-publication.
//! * **Mutation self-tests** — every named seeded bug in the primitives
//!   (see `bgp_shmem::model_support`) must be *caught* within a bounded
//!   schedule budget, and the reported trace must replay to the same
//!   failure. A checker that cannot fail proves nothing.
//! * **Regression tests** — the concrete bugs this checker found when it
//!   was first pointed at the crate (stats counting reserved tickets as
//!   enqueues; `MessageCounter::reset` racing active waiters; completion
//!   counter overflow being debug-only), pinned as model scenarios.

#![cfg(feature = "model")]

use std::sync::Arc;

use bgp_check::thread;
use bgp_check::{explore, model_with, Config, Failure, FailureKind};
use bgp_shmem::sync::cell::UnsafeCell;
use bgp_shmem::{BcastFifo, CompletionCounter, MessageCounter, PtpFifo, SeqLock};

/// Explore a mutated scenario, require a failure within the budget, then
/// require that replaying the reported trace (with the same mutation)
/// reproduces the same kind of failure deterministically.
fn assert_mutation_caught(name: &str, cfg: Config, scenario: fn()) -> Failure {
    let report = explore(cfg.mutate(name), scenario);
    let failure = report.failure.unwrap_or_else(|| {
        panic!(
            "seeded bug `{name}` was NOT caught in {} schedule(s)",
            report.schedules
        )
    });
    let replay = explore(Config::replay(&failure.trace).mutate(name), scenario);
    assert_eq!(replay.schedules, 1);
    let replayed = replay
        .failure
        .unwrap_or_else(|| panic!("replaying the failing trace of `{name}` found no failure"));
    assert_eq!(replayed.kind, failure.kind, "replay diverged for `{name}`");
    assert_eq!(
        replayed.trace, failure.trace,
        "trace not stable for `{name}`"
    );
    failure
}

// ---------------------------------------------------------------------------
// Pt-to-Pt FIFO
// ---------------------------------------------------------------------------

fn ptp_spsc_scenario() {
    let q = Arc::new(PtpFifo::new(2));
    let producer = {
        let q = q.clone();
        thread::spawn(move || {
            for i in 1..=3u64 {
                q.enqueue(i);
            }
        })
    };
    for i in 1..=3u64 {
        assert_eq!(q.dequeue(), i, "reordered or lost");
    }
    producer.join();
}

/// SPSC through a wrap-around (3 messages, 2 slots): every schedule
/// delivers in order with no loss.
#[test]
fn ptp_spsc_wraparound_in_order() {
    model_with(Config::dfs(5_000), ptp_spsc_scenario);
}

/// Two producers, main consumes: no loss, no duplication, per-producer
/// order preserved, under every explored schedule.
#[test]
fn ptp_mpmc_no_loss_no_duplication() {
    model_with(Config::dfs(5_000), || {
        let q = Arc::new(PtpFifo::new(2));
        let producers: Vec<_> = (0..2u64)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    q.enqueue((p, 0u64));
                    q.enqueue((p, 1u64));
                })
            })
            .collect();
        let mut next = [0u64; 2];
        for _ in 0..4 {
            let (p, i) = q.dequeue();
            assert_eq!(i, next[p as usize], "producer {p} stream reordered");
            next[p as usize] += 1;
        }
        for h in producers {
            h.join();
        }
        assert_eq!(next, [2, 2], "lost or duplicated messages");
    });
}

/// `try_dequeue` under contention with a blocking consumer: each message is
/// delivered exactly once.
#[test]
fn ptp_try_dequeue_exactly_once() {
    model_with(Config::dfs(5_000), || {
        let q = Arc::new(PtpFifo::new(2));
        let producer = {
            let q = q.clone();
            thread::spawn(move || {
                q.enqueue(1u64);
                q.enqueue(2u64);
            })
        };
        let mut got = Vec::new();
        while got.len() < 2 {
            if let Some(v) = q.try_dequeue() {
                got.push(v);
            } else {
                // Spin-park: an unbounded poll loop would otherwise be a
                // livelock under exhaustive scheduling.
                thread::spin();
            }
        }
        producer.join();
        assert_eq!(got, [1, 2]);
    });
}

/// Seeded bug: publication store weakened to `Relaxed` — the consumer's
/// payload read is no longer ordered after the producer's write. Must be
/// reported as a data race and replay deterministically.
#[test]
fn mutation_ptp_publish_relaxed_is_caught() {
    let f = assert_mutation_caught("ptp_publish_relaxed", Config::dfs(5_000), || {
        let q = Arc::new(PtpFifo::new(2));
        let producer = {
            let q = q.clone();
            thread::spawn(move || q.enqueue(7u64))
        };
        assert_eq!(q.dequeue(), 7);
        producer.join();
    });
    assert_eq!(f.kind, FailureKind::Race, "{f}");
}

/// Seeded bug: the consumer's slot-freeing store weakened to `Relaxed` —
/// the next-cycle producer's payload write races the old read.
#[test]
fn mutation_ptp_free_relaxed_is_caught() {
    let f = assert_mutation_caught("ptp_free_relaxed", Config::dfs(5_000), ptp_spsc_scenario);
    assert_eq!(f.kind, FailureKind::Race, "{f}");
}

// ---------------------------------------------------------------------------
// Bcast FIFO
// ---------------------------------------------------------------------------

fn bcast_two_consumer_scenario() {
    let (fifo, mut consumers) = BcastFifo::with_consumers(2, 2);
    let producer = {
        let fifo = fifo.clone();
        thread::spawn(move || {
            fifo.enqueue(10u64);
            fifo.enqueue(20u64);
        })
    };
    let reader = {
        let mut c = consumers.pop().unwrap();
        thread::spawn(move || {
            assert_eq!(c.recv(), 10, "consumer 1 reordered");
            assert_eq!(c.recv(), 20, "consumer 1 reordered");
        })
    };
    let mut c0 = consumers.pop().unwrap();
    assert_eq!(c0.recv(), 10, "consumer 0 reordered");
    assert_eq!(c0.recv(), 20, "consumer 0 reordered");
    producer.join();
    reader.join();
}

/// Both consumers see both messages, in order, under every explored
/// schedule; afterwards both slots are retired.
#[test]
fn bcast_delivers_to_every_consumer_in_order() {
    model_with(Config::dfs(5_000), || {
        bcast_two_consumer_scenario();
    });
}

/// The acceptance smoke: the unmutated Bcast FIFO survives 10,000 seeded
/// random schedules of the two-consumer scenario (loss, duplication,
/// reordering, retirement, and payload-visibility oracles all active).
#[test]
fn bcast_ten_thousand_random_schedules() {
    let report = explore(Config::random(0x00B1_44E5, 10_000), || {
        bcast_two_consumer_scenario();
    });
    if let Some(f) = report.failure {
        panic!("random exploration found a failure:\n{f}");
    }
    assert_eq!(report.schedules, 10_000);
}

/// A slot retires (and its space becomes reusable) only after the *last*
/// reader; with a wrap-around the producer must block until then.
#[test]
fn bcast_last_reader_retirement_allows_reuse() {
    model_with(Config::dfs(5_000), || {
        let (fifo, mut consumers) = BcastFifo::with_consumers(2, 1);
        let producer = {
            let fifo = fifo.clone();
            thread::spawn(move || {
                for i in 1..=3u64 {
                    fifo.enqueue(i);
                }
            })
        };
        let mut c = consumers.pop().unwrap();
        for i in 1..=3u64 {
            assert_eq!(c.recv(), i);
        }
        producer.join();
        let stats = fifo.stats();
        assert_eq!(stats.enqueued, 3);
        assert_eq!(stats.dequeued, 3);
        assert_eq!(stats.retired, 3, "all slots must retire");
    });
}

/// Regression (the stats bug this checker found): a producer spinning for
/// space has reserved a ticket but published nothing; `stats().enqueued`
/// must not count it under ANY schedule. With the old `tail`-based stats
/// the checker halts the producer exactly between reservation and
/// publication and the assertion below fails.
#[test]
fn bcast_stats_never_count_waiting_producers() {
    model_with(Config::dfs(5_000), || {
        let (fifo, mut consumers) = BcastFifo::with_consumers(2, 1);
        fifo.enqueue(1u64);
        fifo.enqueue(2u64);
        let blocked = {
            let fifo = fifo.clone();
            thread::spawn(move || fifo.enqueue(3u64))
        };
        assert!(
            fifo.stats().enqueued <= 2,
            "a waiting producer was counted as an enqueue"
        );
        let mut c = consumers.pop().unwrap();
        for i in 1..=3u64 {
            assert_eq!(c.recv(), i);
        }
        blocked.join();
        assert_eq!(fifo.stats().enqueued, 3);
    });
}

/// Seeded bug: publication weakened to `Relaxed`.
#[test]
fn mutation_bcast_publish_relaxed_is_caught() {
    let f = assert_mutation_caught("bcast_publish_relaxed", Config::dfs(5_000), || {
        let (fifo, mut consumers) = BcastFifo::with_consumers(2, 1);
        let producer = {
            let fifo = fifo.clone();
            thread::spawn(move || fifo.enqueue(5u64))
        };
        assert_eq!(consumers[0].recv(), 5);
        producer.join();
    });
    assert_eq!(f.kind, FailureKind::Race, "{f}");
}

/// Seeded bug: slot published before the payload write (the "write
/// completion step" moved above the write). Depending on the schedule this
/// surfaces as a data race or as a consumer observing the wrong payload;
/// either way every explored failure must replay.
#[test]
fn mutation_bcast_publish_before_write_is_caught() {
    let f = assert_mutation_caught("bcast_publish_before_write", Config::dfs(5_000), || {
        let (fifo, mut consumers) = BcastFifo::with_consumers(2, 1);
        let producer = {
            let fifo = fifo.clone();
            thread::spawn(move || fifo.enqueue(0xDEADu64))
        };
        assert_eq!(consumers[0].recv(), 0xDEAD);
        producer.join();
    });
    assert!(
        matches!(f.kind, FailureKind::Race | FailureKind::Panic),
        "{f}"
    );
}

/// Seeded bug: `readers_left` never initialised — no slot can ever retire,
/// so a wrap-around wedges every thread. Must be reported as a deadlock.
#[test]
fn mutation_bcast_skip_readers_init_is_caught() {
    let f = assert_mutation_caught("bcast_skip_readers_init", Config::dfs(5_000), || {
        let (fifo, mut consumers) = BcastFifo::with_consumers(2, 1);
        let producer = {
            let fifo = fifo.clone();
            thread::spawn(move || {
                for i in 1..=3u64 {
                    fifo.enqueue(i);
                }
            })
        };
        let mut c = consumers.pop().unwrap();
        for i in 1..=3u64 {
            assert_eq!(c.recv(), i);
        }
        producer.join();
    });
    assert_eq!(f.kind, FailureKind::Deadlock, "{f}");
}

/// Seeded bug: the reader-count decrement weakened to `Relaxed` — the last
/// reader's payload drop is no longer ordered after the other readers'
/// payload reads. Must be reported as a data race.
#[test]
fn mutation_bcast_retire_relaxed_is_caught() {
    let f = assert_mutation_caught(
        "bcast_retire_relaxed",
        Config::dfs(10_000),
        bcast_two_consumer_scenario,
    );
    assert_eq!(f.kind, FailureKind::Race, "{f}");
}

// ---------------------------------------------------------------------------
// Seqlock (the cross-process status/job record primitive)
// ---------------------------------------------------------------------------

/// Writer publishes `[k, 2k]` records; the reader accepts only stable
/// snapshots, so every accepted snapshot must satisfy `w1 == 2·w0`. This
/// heap-backed run is the oracle for the mmap-backed twin in `bgp-smp`'s
/// process backend — same `SeqLock` code, different `SeqWords` storage.
fn seqlock_scenario() {
    let l = Arc::new(SeqLock::heap(2));
    let writer = {
        let l = l.clone();
        thread::spawn(move || {
            l.publish(&[1, 2]);
            l.publish(&[2, 4]);
        })
    };
    let mut out = [0u64; 2];
    // A few racing reads (bounded — an acceptance-gated spin loop could
    // park after the writer's final store and read as a deadlock): every
    // accepted snapshot must be internally consistent.
    for _ in 0..3 {
        if l.try_read_into(&mut out).is_some() {
            assert_eq!(out[1], 2 * out[0], "torn seqlock snapshot");
        }
    }
    writer.join();
    // Quiescent read: the final record must be fully visible.
    l.read_into(&mut out);
    assert_eq!(out, [2, 4], "final record not fully visible");
}

/// Every explored schedule of writer-vs-reader yields only consistent
/// snapshots.
#[test]
fn seqlock_snapshots_are_never_torn() {
    model_with(Config::dfs(5_000), seqlock_scenario);
}

/// Seeded bug: the writer skips the odd "write in progress" mark — a
/// reader overlapping the data stores sees an even, unchanged version and
/// accepts a half-applied record. The torn-snapshot oracle must catch it.
#[test]
fn mutation_seqlock_enter_skipped_is_caught() {
    let f = assert_mutation_caught(
        "seqlock_enter_skipped",
        Config::dfs(5_000),
        seqlock_scenario,
    );
    assert_eq!(f.kind, FailureKind::Panic, "{f}");
}

/// Seeded bug: the reader trusts its first pass without re-checking the
/// version — a concurrent writer's half-applied record is returned as
/// stable. Must be caught by the same oracle.
#[test]
fn mutation_seqlock_validate_skipped_is_caught() {
    let f = assert_mutation_caught(
        "seqlock_validate_skipped",
        Config::dfs(5_000),
        seqlock_scenario,
    );
    assert_eq!(f.kind, FailureKind::Panic, "{f}");
}

// ---------------------------------------------------------------------------
// Message counter
// ---------------------------------------------------------------------------

/// The §IV-C contract: a consumer that observes the published count also
/// observes the buffer bytes it covers — under every explored schedule.
#[test]
fn counter_publish_makes_buffer_visible() {
    model_with(Config::dfs(5_000), || {
        let buf = Arc::new(UnsafeCell::new(0u64));
        let ctr = Arc::new(MessageCounter::new());
        let producer = {
            let (buf, ctr) = (buf.clone(), ctr.clone());
            thread::spawn(move || {
                unsafe { buf.with_mut(|p| *p = 0xAB) };
                ctr.publish(8);
            })
        };
        if ctr.read() >= 8 {
            unsafe { buf.with(|p| assert_eq!(*p, 0xAB)) };
        }
        producer.join();
    });
}

/// Seeded bug: the publication fetch-add weakened to `Relaxed` — the
/// consumer can observe the count without the bytes. Must be a data race.
#[test]
fn mutation_counter_publish_relaxed_is_caught() {
    let f = assert_mutation_caught("counter_publish_relaxed", Config::dfs(5_000), || {
        let buf = Arc::new(UnsafeCell::new(0u64));
        let ctr = Arc::new(MessageCounter::new());
        let producer = {
            let (buf, ctr) = (buf.clone(), ctr.clone());
            thread::spawn(move || {
                unsafe { buf.with_mut(|p| *p = 1) };
                ctr.publish(8);
            })
        };
        let got = ctr.wait_for(8);
        assert_eq!(got, 8);
        unsafe { buf.with(|p| assert_eq!(*p, 1)) };
        producer.join();
    });
    assert_eq!(f.kind, FailureKind::Race, "{f}");
}

/// The documented reset protocol, in miniature, over two operations: the
/// consumer announces completion on a `CompletionCounter`; the producer
/// waits for it, resets, signals go, and runs the next operation. Every
/// schedule must deliver both operations' payloads intact (and the
/// debug-mode waiter guard must never fire on the correct protocol).
#[test]
fn message_counter_reset_protocol_two_operations() {
    model_with(Config::dfs(5_000), || {
        let buf = Arc::new(UnsafeCell::new(0u64));
        let ctr = Arc::new(MessageCounter::new());
        let done = Arc::new(CompletionCounter::new(1));
        let go = Arc::new(MessageCounter::new());
        let consumer = {
            let (buf, ctr, done, go) = (buf.clone(), ctr.clone(), done.clone(), go.clone());
            thread::spawn(move || {
                // Operation 1.
                ctr.wait_for(1);
                unsafe { buf.with(|p| assert_eq!(*p, 1, "op 1 payload")) };
                done.arrive();
                // Wait for the producer's reset before re-arming on the
                // same counter — this is the step the protocol requires.
                go.wait_for(1);
                // Operation 2.
                ctr.wait_for(1);
                unsafe { buf.with(|p| assert_eq!(*p, 2, "op 2 payload")) };
            })
        };
        // Producer, operation 1.
        unsafe { buf.with_mut(|p| *p = 1) };
        ctr.publish(1);
        // Wait for the consumer, then rearm (the guard must not fire) and
        // release it into operation 2.
        done.wait();
        ctr.reset();
        go.publish(1);
        // Producer, operation 2.
        unsafe { buf.with_mut(|p| *p = 2) };
        ctr.publish(1);
        consumer.join();
        assert_eq!(ctr.reset_count(), 1);
    });
}

/// The misuse the protocol forbids: resetting without waiting for the
/// consumer. Some schedule must fail — as the debug-mode waiter guard
/// firing, as a deadlock (the consumer waits for a count the reset wiped),
/// or as the consumer reading the producer's next-op bytes.
#[test]
#[cfg(debug_assertions)]
fn message_counter_reset_misuse_is_caught() {
    let report = explore(Config::dfs(5_000), || {
        let ctr = Arc::new(MessageCounter::new());
        let consumer = {
            let ctr = ctr.clone();
            thread::spawn(move || {
                ctr.wait_for(1);
            })
        };
        ctr.publish(1);
        // BUG (deliberate): no completion handshake before the reset.
        ctr.reset();
        consumer.join();
    });
    let failure = report
        .failure
        .expect("resetting under an active waiter must fail on some schedule");
    assert!(
        matches!(failure.kind, FailureKind::Panic | FailureKind::Deadlock),
        "{failure}"
    );
    // The failing schedule replays.
    let replay = explore(Config::replay(&failure.trace), || {
        let ctr = Arc::new(MessageCounter::new());
        let consumer = {
            let ctr = ctr.clone();
            thread::spawn(move || {
                ctr.wait_for(1);
            })
        };
        ctr.publish(1);
        ctr.reset();
        consumer.join();
    });
    assert_eq!(
        replay.failure.expect("replay reproduces").kind,
        failure.kind
    );
}

// ---------------------------------------------------------------------------
// Completion counter
// ---------------------------------------------------------------------------

/// §V-A: the master that observes completion also observes every peer's
/// writes, and exactly one arrival is the final one — every schedule.
#[test]
fn completion_counter_orders_peer_writes_before_master() {
    model_with(Config::dfs(5_000), || {
        let cells: Arc<Vec<UnsafeCell<u64>>> =
            Arc::new((0..2).map(|_| UnsafeCell::new(0)).collect());
        let done = Arc::new(CompletionCounter::new(2));
        let peers: Vec<_> = (0..2usize)
            .map(|i| {
                let (cells, done) = (cells.clone(), done.clone());
                thread::spawn(move || {
                    unsafe { cells[i].with_mut(|p| *p = i as u64 + 1) };
                    u32::from(done.arrive())
                })
            })
            .collect();
        done.wait();
        for (i, cell) in cells.iter().enumerate() {
            unsafe { cell.with(|p| assert_eq!(*p, i as u64 + 1, "peer {i} write invisible")) };
        }
        let finals: u32 = peers.into_iter().map(|h| h.join()).sum();
        assert_eq!(finals, 1, "exactly one final arrival");
    });
}

/// Seeded bug: `arrive` weakened to `Relaxed` — the master's buffer reuse
/// is no longer ordered after the peers' copies. Must be a data race.
#[test]
fn mutation_completion_arrive_relaxed_is_caught() {
    let f = assert_mutation_caught("completion_arrive_relaxed", Config::dfs(5_000), || {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let done = Arc::new(CompletionCounter::new(1));
        let peer = {
            let (cell, done) = (cell.clone(), done.clone());
            thread::spawn(move || {
                unsafe { cell.with_mut(|p| *p = 9) };
                done.arrive();
            })
        };
        done.wait();
        unsafe { cell.with(|p| assert_eq!(*p, 9)) };
        peer.join();
    });
    assert_eq!(f.kind, FailureKind::Race, "{f}");
}

/// The epoch guard (always on, not just in debug): arriving into a
/// complete, un-reset epoch panics on every schedule that reaches it —
/// and the checker reports it with a replayable trace.
#[test]
fn completion_epoch_overflow_is_caught_by_the_checker() {
    let report = explore(Config::dfs(100), || {
        let done = CompletionCounter::new(1);
        assert!(done.arrive());
        let _ = done.arrive(); // BUG (deliberate): no reset between ops
    });
    let failure = report.failure.expect("overflow must be caught");
    assert_eq!(failure.kind, FailureKind::Panic, "{failure}");
    assert!(
        failure.message.contains("completion counter overflow"),
        "{failure}"
    );
}
