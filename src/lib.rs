//! # bgp-collectives — facade crate
//!
//! Reproduction of *"Optimizing MPI Collectives Using Efficient Intra-node
//! Communication Techniques over the Blue Gene/P Supercomputer"* (IPDPS 2011,
//! Mamidala et al., IBM RC25088).
//!
//! This crate re-exports the whole workspace under short names and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). See `DESIGN.md` at the repository root for the system
//! inventory and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Layer map (bottom to top)
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`sim`] | `bgp-sim` | deterministic discrete-event engine + bandwidth servers |
//! | [`machine`] | `bgp-machine` | BG/P hardware model: torus, tree, DMA, memory, CNK |
//! | [`shmem`] | `bgp-shmem` | real concurrent primitives: Bcast FIFO, message counters, windows |
//! | [`smp`] | `bgp-smp` | threaded 4-rank node runtime over real shared memory |
//! | [`sched`] | `bgp-sched` | nonblocking collectives, per-node progress engine, op-scheduling service |
//! | [`svc`] | `bgp-svc` | multi-tenant service: sessions, communicator lifecycle, weighted fair scheduling |
//! | [`dcmf`] | `bgp-dcmf` | messaging layer: pt2pt, direct put/get, line bcast, tree channel |
//! | [`ccmi`] | `bgp-ccmi` | collective framework: color schedules, executors, pipelining |
//! | [`mpi`] | `bgp-mpi` | MPI-like API + every algorithm and baseline from the paper |
//! | [`tune`] | `bgp-tune` | measurement-driven autotuner + perf-regression gate |

pub use bgp_ccmi as ccmi;
pub use bgp_dcmf as dcmf;
pub use bgp_machine as machine;
pub use bgp_mpi as mpi;
pub use bgp_sched as sched;
pub use bgp_shmem as shmem;
pub use bgp_sim as sim;
pub use bgp_smp as smp;
pub use bgp_svc as svc;
pub use bgp_tune as tune;
